// Binary (de)serialization of a ParamStore.
//
// Format: magic "NSYN", u32 version, u64 param count, then for each
// parameter u64 rows, u64 cols, rows*cols little-endian f32. Loading
// requires the target store to have identical shapes in identical order
// (models are rebuilt from the same config before loading).
#pragma once

#include <string>

#include "nn/autograd.hpp"

namespace netsyn::nn {

/// Writes every parameter to `path`. Throws std::runtime_error on I/O error.
void saveParams(const ParamStore& store, const std::string& path);

/// Loads parameters into `store` (shapes must match exactly).
/// Throws std::runtime_error on I/O error or shape/format mismatch.
void loadParams(ParamStore& store, const std::string& path);

}  // namespace netsyn::nn
