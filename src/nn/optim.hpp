// Gradient-descent optimizers over a ParamStore: SGD with momentum and Adam.
#pragma once

#include <vector>

#include "nn/autograd.hpp"

namespace netsyn::nn {

/// Optimizer interface: `step()` applies the accumulated gradients to the
/// parameters; the caller zeroes gradients between minibatches.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step() = 0;
};

/// Stochastic gradient descent with classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(ParamStore& store, float lr, float momentum = 0.0f);

  void step() override;
  void setLearningRate(float lr) { lr_ = lr; }
  float learningRate() const { return lr_; }

 private:
  ParamStore& store_;
  float lr_;
  float momentum_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(ParamStore& store, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  void step() override;
  void setLearningRate(float lr) { lr_ = lr; }
  float learningRate() const { return lr_; }

 private:
  ParamStore& store_;
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace netsyn::nn
