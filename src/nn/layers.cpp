#include "nn/layers.hpp"

#include <cmath>

namespace netsyn::nn {

Matrix xavierUniform(std::size_t rows, std::size_t cols, util::Rng& rng) {
  const float s =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.at(i) = static_cast<float>(rng.uniformReal(-s, s));
  return m;
}

Embedding::Embedding(std::size_t vocab, std::size_t dim, ParamStore& store,
                     util::Rng& rng)
    : vocab_(vocab), dim_(dim), table_(store.make(xavierUniform(vocab, dim, rng))) {}

Var Embedding::lookup(std::size_t token) const {
  return selectRow(table_, token);
}

Linear::Linear(std::size_t in, std::size_t out, ParamStore& store,
               util::Rng& rng)
    : in_(in),
      out_(out),
      w_(store.make(xavierUniform(in, out, rng))),
      b_(store.make(Matrix(1, out, 0.0f))) {}

Var Linear::forward(const Var& x) const { return add(matmul(x, w_), b_); }

Lstm::Lstm(std::size_t in, std::size_t hidden, ParamStore& store,
           util::Rng& rng)
    : in_(in),
      hidden_(hidden),
      wx_(store.make(xavierUniform(in, 4 * hidden, rng))),
      wh_(store.make(xavierUniform(hidden, 4 * hidden, rng))),
      b_(store.make(Matrix(1, 4 * hidden, 0.0f))) {
  // Forget-gate bias (+1): columns [H, 2H).
  for (std::size_t j = hidden_; j < 2 * hidden_; ++j) b_->value().at(j) = 1.0f;
}

Lstm::State Lstm::initialState() const {
  return State{constant(Matrix(1, hidden_, 0.0f)),
               constant(Matrix(1, hidden_, 0.0f))};
}

Lstm::State Lstm::step(const Var& x, const State& state) const {
  const Var z = add(add(matmul(x, wx_), matmul(state.h, wh_)), b_);
  const Var i = sigmoidOp(sliceCols(z, 0, hidden_));
  const Var f = sigmoidOp(sliceCols(z, hidden_, hidden_));
  const Var g = tanhOp(sliceCols(z, 2 * hidden_, hidden_));
  const Var o = sigmoidOp(sliceCols(z, 3 * hidden_, hidden_));
  const Var c = add(mulElem(f, state.c), mulElem(i, g));
  const Var h = mulElem(o, tanhOp(c));
  return State{h, c};
}

Var Lstm::encode(const std::vector<Var>& sequence) const {
  State state = initialState();
  for (const Var& x : sequence) state = step(x, state);
  return state.h;
}

std::vector<Var> Lstm::encodeAll(const std::vector<Var>& sequence) const {
  std::vector<Var> hs;
  hs.reserve(sequence.size());
  State state = initialState();
  for (const Var& x : sequence) {
    state = step(x, state);
    hs.push_back(state.h);
  }
  return hs;
}

}  // namespace netsyn::nn
