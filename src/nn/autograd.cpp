#include "nn/autograd.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace netsyn::nn {

Var constant(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

Var parameter(Matrix value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

namespace {
thread_local bool g_inference_mode = false;
}  // namespace

InferenceModeGuard::InferenceModeGuard() : previous_(g_inference_mode) {
  g_inference_mode = true;
}

InferenceModeGuard::~InferenceModeGuard() { g_inference_mode = previous_; }

bool inferenceModeEnabled() { return g_inference_mode; }

Var makeNode(Matrix value, std::vector<Var> parents,
             std::function<void(Node&)> backfn) {
  if (g_inference_mode) {
    // Value-only node: no graph retention, backward() is illegal downstream.
    return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
  }
  auto node = std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
  node->parents_ = std::move(parents);
  node->backfn_ = std::move(backfn);
  return node;
}

namespace {

void requireSameShape(const Var& a, const Var& b, const char* op) {
  if (!a->value().sameShape(b->value()))
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a->value().shapeString() + " vs " +
                                b->value().shapeString());
}

}  // namespace

Var add(const Var& a, const Var& b) {
  requireSameShape(a, b, "add");
  Matrix out = a->value();
  out.addInPlace(b->value());
  return makeNode(std::move(out), {a, b}, [a, b](Node& n) {
    a->grad().addInPlace(n.grad());
    b->grad().addInPlace(n.grad());
  });
}

Var sub(const Var& a, const Var& b) {
  requireSameShape(a, b, "sub");
  Matrix out = a->value();
  out.axpyInPlace(-1.0f, b->value());
  return makeNode(std::move(out), {a, b}, [a, b](Node& n) {
    a->grad().addInPlace(n.grad());
    b->grad().axpyInPlace(-1.0f, n.grad());
  });
}

Var mulElem(const Var& a, const Var& b) {
  requireSameShape(a, b, "mulElem");
  Matrix out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i) out.at(i) *= b->value().at(i);
  return makeNode(std::move(out), {a, b}, [a, b](Node& n) {
    for (std::size_t i = 0; i < n.grad().size(); ++i) {
      a->grad().at(i) += n.grad().at(i) * b->value().at(i);
      b->grad().at(i) += n.grad().at(i) * a->value().at(i);
    }
  });
}

Var scale(const Var& a, float s) {
  Matrix out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i) out.at(i) *= s;
  return makeNode(std::move(out), {a}, [a, s](Node& n) {
    a->grad().axpyInPlace(s, n.grad());
  });
}

Var matmul(const Var& a, const Var& b) {
  if (a->value().cols() != b->value().rows())
    throw std::invalid_argument("matmul: inner dimensions disagree: " +
                                a->value().shapeString() + " * " +
                                b->value().shapeString());
  Matrix out = matmulValue(a->value(), b->value());
  return makeNode(std::move(out), {a, b}, [a, b](Node& n) {
    // dA += dC * B^T ; dB += A^T * dC.
    addABTranspose(a->grad(), n.grad(), b->value());
    addATransposeB(b->grad(), a->value(), n.grad());
  });
}

Var tanhOp(const Var& a) {
  Matrix out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i) out.at(i) = std::tanh(out.at(i));
  return makeNode(std::move(out), {a}, [a](Node& n) {
    for (std::size_t i = 0; i < n.grad().size(); ++i) {
      const float y = n.value().at(i);
      a->grad().at(i) += n.grad().at(i) * (1.0f - y * y);
    }
  });
}

Var sigmoidOp(const Var& a) {
  Matrix out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const float x = out.at(i);
    out.at(i) = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                          : std::exp(x) / (1.0f + std::exp(x));
  }
  return makeNode(std::move(out), {a}, [a](Node& n) {
    for (std::size_t i = 0; i < n.grad().size(); ++i) {
      const float y = n.value().at(i);
      a->grad().at(i) += n.grad().at(i) * y * (1.0f - y);
    }
  });
}

Var reluOp(const Var& a) {
  Matrix out = a->value();
  for (std::size_t i = 0; i < out.size(); ++i)
    out.at(i) = out.at(i) > 0.0f ? out.at(i) : 0.0f;
  return makeNode(std::move(out), {a}, [a](Node& n) {
    for (std::size_t i = 0; i < n.grad().size(); ++i)
      if (a->value().at(i) > 0.0f) a->grad().at(i) += n.grad().at(i);
  });
}

Var concatCols(const Var& a, const Var& b) {
  if (a->value().rows() != 1 || b->value().rows() != 1)
    throw std::invalid_argument("concatCols expects row vectors");
  const std::size_t na = a->value().cols(), nb = b->value().cols();
  Matrix out(1, na + nb);
  for (std::size_t j = 0; j < na; ++j) out.at(j) = a->value().at(j);
  for (std::size_t j = 0; j < nb; ++j) out.at(na + j) = b->value().at(j);
  return makeNode(std::move(out), {a, b}, [a, b, na, nb](Node& n) {
    for (std::size_t j = 0; j < na; ++j) a->grad().at(j) += n.grad().at(j);
    for (std::size_t j = 0; j < nb; ++j)
      b->grad().at(j) += n.grad().at(na + j);
  });
}

Var sliceCols(const Var& a, std::size_t start, std::size_t len) {
  if (a->value().rows() != 1 || start + len > a->value().cols())
    throw std::invalid_argument("sliceCols out of range");
  Matrix out(1, len);
  for (std::size_t j = 0; j < len; ++j) out.at(j) = a->value().at(start + j);
  return makeNode(std::move(out), {a}, [a, start, len](Node& n) {
    for (std::size_t j = 0; j < len; ++j)
      a->grad().at(start + j) += n.grad().at(j);
  });
}

Var selectRow(const Var& a, std::size_t index) {
  if (index >= a->value().rows())
    throw std::invalid_argument("selectRow out of range");
  const std::size_t m = a->value().cols();
  Matrix out(1, m);
  for (std::size_t j = 0; j < m; ++j) out.at(j) = a->value()(index, j);
  return makeNode(std::move(out), {a}, [a, index, m](Node& n) {
    for (std::size_t j = 0; j < m; ++j)
      a->grad()(index, j) += n.grad().at(j);
  });
}

Var meanAll(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a->value().size());
  float s = 0.0f;
  for (std::size_t i = 0; i < a->value().size(); ++i) s += a->value().at(i);
  Matrix out(1, 1);
  out.at(0) = s * inv;
  return makeNode(std::move(out), {a}, [a, inv](Node& n) {
    const float g = n.grad().at(0) * inv;
    for (std::size_t i = 0; i < a->grad().size(); ++i) a->grad().at(i) += g;
  });
}

Var softmaxCrossEntropy(const Var& logits, std::size_t label) {
  if (logits->value().rows() != 1 || label >= logits->value().cols())
    throw std::invalid_argument("softmaxCrossEntropy: bad label or shape");
  const Matrix probs = softmaxValue(logits->value());
  Matrix out(1, 1);
  out.at(0) = -std::log(std::max(probs.at(label), 1e-12f));
  return makeNode(std::move(out), {logits}, [logits, probs, label](Node& n) {
    const float g = n.grad().at(0);
    for (std::size_t j = 0; j < probs.cols(); ++j) {
      const float onehot = (j == label) ? 1.0f : 0.0f;
      logits->grad().at(j) += g * (probs.at(j) - onehot);
    }
  });
}

Var bceWithLogits(const Var& logits, const Matrix& targets) {
  if (!logits->value().sameShape(targets))
    throw std::invalid_argument("bceWithLogits: shape mismatch");
  const std::size_t n = targets.size();
  const float inv = 1.0f / static_cast<float>(n);
  float loss = 0.0f;
  Matrix sig(1, n);
  for (std::size_t i = 0; i < n; ++i) {
    const float x = logits->value().at(i);
    const float t = targets.at(i);
    // Stable: max(x,0) - x*t + log(1 + exp(-|x|)).
    loss += std::max(x, 0.0f) - x * t + std::log1p(std::exp(-std::fabs(x)));
    sig.at(i) = x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                          : std::exp(x) / (1.0f + std::exp(x));
  }
  Matrix out(1, 1);
  out.at(0) = loss * inv;
  Matrix t = targets;
  return makeNode(std::move(out), {logits}, [logits, sig, t, inv](Node& nd) {
    const float g = nd.grad().at(0) * inv;
    for (std::size_t i = 0; i < sig.size(); ++i)
      logits->grad().at(i) += g * (sig.at(i) - t.at(i));
  });
}

Var mseLoss(const Var& pred, const Matrix& target) {
  if (!pred->value().sameShape(target))
    throw std::invalid_argument("mseLoss: shape mismatch");
  const std::size_t n = target.size();
  const float inv = 1.0f / static_cast<float>(n);
  float loss = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred->value().at(i) - target.at(i);
    loss += d * d;
  }
  Matrix out(1, 1);
  out.at(0) = loss * inv;
  Matrix t = target;
  return makeNode(std::move(out), {pred}, [pred, t, inv](Node& nd) {
    const float g = nd.grad().at(0) * inv;
    for (std::size_t i = 0; i < t.size(); ++i)
      pred->grad().at(i) +=
          g * 2.0f * (pred->value().at(i) - t.at(i));
  });
}

void backward(const Var& root) {
  if (root->value().rows() != 1 || root->value().cols() != 1)
    throw std::invalid_argument("backward: root must be a 1x1 loss");

  // Iterative post-order topological sort (graphs can be thousands of nodes
  // deep for long sequences; recursion would overflow the stack).
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents().size()) {
      Node* parent = node->parents()[next].get();
      ++next;
      if (visited.insert(parent).second) stack.emplace_back(parent, 0);
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root->grad().fill(1.0f);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backfn_) node->backfn_(*node);
  }
}

Var ParamStore::make(Matrix value) {
  Var p = parameter(std::move(value));
  params_.push_back(p);
  return p;
}

void ParamStore::add(Var param) { params_.push_back(std::move(param)); }

std::size_t ParamStore::totalParameters() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p->value().size();
  return n;
}

void ParamStore::zeroGrad() {
  for (auto& p : params_) p->grad().fill(0.0f);
}

float ParamStore::gradNorm() const {
  double s = 0.0;
  for (const auto& p : params_)
    for (std::size_t i = 0; i < p->grad().size(); ++i) {
      const double g = p->grad().at(i);
      s += g * g;
    }
  return static_cast<float>(std::sqrt(s));
}

void ParamStore::clipGradNorm(float max_norm) {
  const float norm = gradNorm();
  if (norm <= max_norm || norm == 0.0f) return;
  const float scale = max_norm / norm;
  for (auto& p : params_)
    for (std::size_t i = 0; i < p->grad().size(); ++i)
      p->grad().at(i) *= scale;
}

}  // namespace netsyn::nn
