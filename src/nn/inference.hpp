// Allocation-free inference kernels for the layers in layers.hpp.
//
// The genetic algorithm calls the fitness model once per examined candidate
// (up to millions of times per synthesis run at paper scale); building an
// autograd graph for those forward-only passes wastes most of the time in
// allocation. These kernels run the same math over raw float buffers held in
// a reusable `InferenceScratch`. Training keeps using the autograd path; a
// regression test asserts both paths agree to float precision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/layers.hpp"

namespace netsyn::nn {

/// Reusable buffers for one inference thread. The batched kernels size the
/// same buffers to batch * 4H, so one scratch serves both paths. The cell
/// state, step input, and row-mask buffers the encode loops need live here
/// too, so a steady-state forward pass performs no heap allocation at all.
struct InferenceScratch {
  std::vector<float> z;             ///< gate pre-activations (B x 4H)
  std::vector<float> c;             ///< LSTM cell state (B x H)
  std::vector<float> x;             ///< embedded step inputs (B x E)
  std::vector<std::uint8_t> active; ///< per-row live mask (B)

  void ensure(std::size_t n) {
    if (z.size() < n) z.resize(n);
  }
  float* ensureC(std::size_t n) {
    if (c.size() < n) c.resize(n);
    return c.data();
  }
  float* ensureX(std::size_t n) {
    if (x.size() < n) x.resize(n);
    return x.data();
  }
  std::uint8_t* ensureActive(std::size_t n) {
    if (active.size() < n) active.resize(n);
    return active.data();
  }
};

/// h,c := one LSTM step on input x (length = lstm.inDim()).
/// h and c must have length lstm.hiddenDim() and carry the previous state.
void lstmStepFast(const Lstm& lstm, const float* x, float* h, float* c,
                  InferenceScratch& scratch);

/// h := final hidden state over a sequence of embedded tokens; h must have
/// length lstm.hiddenDim() (zero-initialized by this call).
void lstmEncodeTokensFast(const Lstm& lstm, const Embedding& embedding,
                          const std::vector<std::size_t>& tokens, float* h,
                          InferenceScratch& scratch);

/// h := final hidden state over a sequence of raw input vectors (each of
/// length lstm.inDim()); h zero-initialized by this call.
void lstmEncodeVectorsFast(const Lstm& lstm,
                           const std::vector<const float*>& xs, float* h,
                           InferenceScratch& scratch);

/// out := x * W + b for a Linear layer (out length = linear.outDim()).
void linearForwardFast(const Linear& linear, const float* x, float* out);

/// In-place ReLU.
void reluFast(float* x, std::size_t n);

// ---- population-batched kernels --------------------------------------------
//
// The batched kernels run B rows through one layer at a time as blocked
// matrix-matrix products (Z = X*Wx + H*Wh + b broadcast): rows are processed
// in register blocks of four, so every streamed weight row is reused four
// times from registers instead of being re-read per batch row, and rows
// masked out by `active` are skipped outright (the block compacts around
// them). Per-row accumulation order matches the scalar kernels exactly
// (ascending input index, one fused multiply-add per output), so a batched
// forward is bitwise identical to B scalar forwards (pinned by
// tests/test_batch_parity.cpp).

/// Blocked Z += X * W over `batch` rows: X is batch x xStride (first `in`
/// columns used), Z is batch x zStride (first w.cols() columns used). Rows
/// with active[b] == 0 are skipped entirely (pass nullptr for all-active).
/// Bitwise identical per row to calling addVecMat-style accumulation; the
/// building block behind every batched layer here, exposed for tests.
void addVecMatBatch(const float* x, std::size_t xStride, std::size_t batch,
                    std::size_t in, const Matrix& w, float* z,
                    std::size_t zStride,
                    const std::uint8_t* active = nullptr);

/// One batched LSTM step: x is B x inDim, h and c are B x hiddenDim, all
/// row-major and carrying the previous state. When `active` is non-null,
/// rows with active[b] == 0 keep their h/c untouched — this is how
/// variable-length sequences are batched (a finished row's state freezes at
/// its own final step).
void lstmStepBatchFast(const Lstm& lstm, const float* x, std::size_t batch,
                       float* h, float* c, InferenceScratch& scratch,
                       const std::uint8_t* active = nullptr);

/// Batched variable-length token encoding: row b of `h` (B x hiddenDim)
/// receives the final hidden state of `tokens[b]` under `lstm`/`embedding`.
void lstmEncodeTokensBatchFast(
    const Lstm& lstm, const Embedding& embedding,
    const std::vector<std::vector<std::size_t>>& tokens, float* h,
    InferenceScratch& scratch);

/// Batched fixed-length vector-sequence encoding: xs[t] points at the B x
/// inDim inputs of timestep t; row b of `h` gets the final hidden state.
void lstmEncodeVectorsBatchFast(const Lstm& lstm,
                                const std::vector<const float*>& xs,
                                std::size_t batch, float* h,
                                InferenceScratch& scratch);

/// out := X * W + b broadcast for a Linear layer (X is B x inDim, out is
/// B x outDim).
void linearForwardBatchFast(const Linear& linear, const float* x,
                            std::size_t batch, float* out);

}  // namespace netsyn::nn
