// Allocation-free inference kernels for the layers in layers.hpp.
//
// The genetic algorithm calls the fitness model once per examined candidate
// (up to millions of times per synthesis run at paper scale); building an
// autograd graph for those forward-only passes wastes most of the time in
// allocation. These kernels run the same math over raw float buffers held in
// a reusable `InferenceScratch`. Training keeps using the autograd path; a
// regression test asserts both paths agree to float precision.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.hpp"

namespace netsyn::nn {

/// Reusable buffers for one inference thread.
struct InferenceScratch {
  std::vector<float> z;  ///< 4H gate pre-activations
  std::vector<float> tmp;

  void ensure(std::size_t n) {
    if (z.size() < n) z.resize(n);
    if (tmp.size() < n) tmp.resize(n);
  }
};

/// h,c := one LSTM step on input x (length = lstm.inDim()).
/// h and c must have length lstm.hiddenDim() and carry the previous state.
void lstmStepFast(const Lstm& lstm, const float* x, float* h, float* c,
                  InferenceScratch& scratch);

/// h := final hidden state over a sequence of embedded tokens; h must have
/// length lstm.hiddenDim() (zero-initialized by this call).
void lstmEncodeTokensFast(const Lstm& lstm, const Embedding& embedding,
                          const std::vector<std::size_t>& tokens, float* h,
                          InferenceScratch& scratch);

/// h := final hidden state over a sequence of raw input vectors (each of
/// length lstm.inDim()); h zero-initialized by this call.
void lstmEncodeVectorsFast(const Lstm& lstm,
                           const std::vector<const float*>& xs, float* h,
                           InferenceScratch& scratch);

/// out := x * W + b for a Linear layer (out length = linear.outDim()).
void linearForwardFast(const Linear& linear, const float* x, float* out);

/// In-place ReLU.
void reluFast(float* x, std::size_t n);

}  // namespace netsyn::nn
