// Reverse-mode automatic differentiation over Matrix values.
//
// A tiny tape: every operation builds a `Node` holding its value, its parent
// nodes, and a closure that scatters the node's output gradient into its
// parents. `backward(root)` runs a topological sweep. This is the substrate
// on which the LSTM fitness models of the paper (Figure 2) are built; it
// replaces the TensorFlow dependency of the original implementation.
//
// Conventions:
//  - Activations are row vectors (1 x n); parameters are (in x out).
//  - Losses are 1 x 1 scalars.
//  - Gradients accumulate (+=); call ParamStore::zeroGrad between steps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace netsyn::nn {

class Node;
/// Shared handle to a tape node. Ops take and return `Var`s.
using Var = std::shared_ptr<Node>;

class Node {
 public:
  Node(Matrix value, bool requires_grad)
      : value_(std::move(value)), requires_grad_(requires_grad) {}

  const Matrix& value() const { return value_; }
  Matrix& value() { return value_; }

  /// Gradient buffer, allocated lazily (inference-mode forwards never touch
  /// it, halving allocation traffic in the GA's hot loop).
  Matrix& grad() {
    if (grad_.size() != value_.size())
      grad_ = Matrix(value_.rows(), value_.cols(), 0.0f);
    return grad_;
  }
  const Matrix& grad() const {
    return const_cast<Node*>(this)->grad();
  }
  bool requiresGrad() const { return requires_grad_; }

  const std::vector<Var>& parents() const { return parents_; }

  /// Scalar convenience for 1x1 nodes (losses).
  float scalar() const { return value_(0, 0); }

 private:
  friend Var makeNode(Matrix value, std::vector<Var> parents,
                      std::function<void(Node&)> backfn);
  friend Var constant(Matrix value);
  friend Var parameter(Matrix value);
  friend void backward(const Var& root);
  friend void zeroGradGraph(const Var& root);

  Matrix value_;
  Matrix grad_;
  bool requires_grad_;
  std::vector<Var> parents_;
  std::function<void(Node&)> backfn_;  // scatters grad_ into parents
};

/// Leaf with no gradient tracking (inputs, labels).
Var constant(Matrix value);

/// Leaf with gradient tracking (weights, biases). Persisted across graphs;
/// register it in a ParamStore so optimizers can find it.
Var parameter(Matrix value);

/// Internal: interior node factory (exposed for custom ops in tests).
Var makeNode(Matrix value, std::vector<Var> parents,
             std::function<void(Node&)> backfn);

/// While a guard is alive, ops compute values but record no parents or
/// backward closures: the graph is not retained and `backward` must not be
/// called on its outputs. Used for the GA's fitness evaluations, which are
/// forward-only. Guards nest; the flag is thread-local.
class InferenceModeGuard {
 public:
  InferenceModeGuard();
  ~InferenceModeGuard();
  InferenceModeGuard(const InferenceModeGuard&) = delete;
  InferenceModeGuard& operator=(const InferenceModeGuard&) = delete;

 private:
  bool previous_;
};

/// True when an InferenceModeGuard is active on this thread.
bool inferenceModeEnabled();

// ---- arithmetic -------------------------------------------------------------

Var add(const Var& a, const Var& b);       ///< same shape
Var sub(const Var& a, const Var& b);       ///< same shape
Var mulElem(const Var& a, const Var& b);   ///< Hadamard, same shape
Var scale(const Var& a, float s);
Var matmul(const Var& a, const Var& b);    ///< (n x k) * (k x m)

// ---- nonlinearities ---------------------------------------------------------

Var tanhOp(const Var& a);
Var sigmoidOp(const Var& a);
Var reluOp(const Var& a);

// ---- shape ops --------------------------------------------------------------

/// Concatenates row vectors (1 x n, 1 x m) -> (1 x n+m).
Var concatCols(const Var& a, const Var& b);

/// Slice of columns [start, start+len) of a row vector.
Var sliceCols(const Var& a, std::size_t start, std::size_t len);

/// Row `index` of a matrix as a 1 x cols vector. Gradient scatter-adds into
/// that row; this is the embedding-lookup primitive.
Var selectRow(const Var& a, std::size_t index);

/// Mean of all entries -> 1 x 1.
Var meanAll(const Var& a);

// ---- losses -----------------------------------------------------------------

/// Cross-entropy of softmax(logits) against integer `label` -> 1 x 1.
/// Fused for numerical stability; gradient is softmax - onehot.
Var softmaxCrossEntropy(const Var& logits, std::size_t label);

/// Mean binary cross-entropy of sigmoid(logits) against targets in [0,1]
/// (1 x n each) -> 1 x 1. Fused logits formulation (stable for |x| large).
Var bceWithLogits(const Var& logits, const Matrix& targets);

/// Squared error (pred - target)^2 averaged over entries -> 1 x 1.
Var mseLoss(const Var& pred, const Matrix& target);

// ---- engine -----------------------------------------------------------------

/// Seeds d(root)/d(root) = 1 and back-propagates through the whole graph.
/// `root` must be 1 x 1 (a loss).
void backward(const Var& root);

/// Registry of trainable parameters for optimizers and serialization.
class ParamStore {
 public:
  /// Creates + registers a parameter node.
  Var make(Matrix value);
  /// Registers an existing parameter node.
  void add(Var param);

  const std::vector<Var>& params() const { return params_; }
  std::size_t totalParameters() const;
  void zeroGrad();

  /// Global L2 norm of all gradients (for clipping / diagnostics).
  float gradNorm() const;
  /// Scales all gradients so the global norm is at most `max_norm`.
  void clipGradNorm(float max_norm);

 private:
  std::vector<Var> params_;
};

}  // namespace netsyn::nn
