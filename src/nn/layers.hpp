// Neural network layers: Embedding, Linear, and LSTM.
//
// These are the building blocks of the paper's fitness-function architecture
// (Figure 2): embedding layers for DSL values and function ids, LSTM encoders
// over token/trace/step/example sequences, and fully connected output heads.
// Parameters are created through a ParamStore so optimizers and the
// serializer see every trainable tensor.
#pragma once

#include <vector>

#include "nn/autograd.hpp"
#include "util/rng.hpp"

namespace netsyn::nn {

/// Xavier/Glorot uniform initialization: U(-s, s), s = sqrt(6/(fanIn+fanOut)).
Matrix xavierUniform(std::size_t rows, std::size_t cols, util::Rng& rng);

/// Token embedding: vocab x dim table; lookup(i) returns row i (1 x dim).
class Embedding {
 public:
  Embedding(std::size_t vocab, std::size_t dim, ParamStore& store,
            util::Rng& rng);

  Var lookup(std::size_t token) const;
  std::size_t vocab() const { return vocab_; }
  std::size_t dim() const { return dim_; }

  /// Raw table for the allocation-free inference path (nn/inference.hpp).
  const Matrix& table() const { return table_->value(); }

 private:
  std::size_t vocab_;
  std::size_t dim_;
  Var table_;  // vocab x dim
};

/// Fully connected layer: y = x * W + b.
class Linear {
 public:
  Linear(std::size_t in, std::size_t out, ParamStore& store, util::Rng& rng);

  Var forward(const Var& x) const;
  std::size_t inDim() const { return in_; }
  std::size_t outDim() const { return out_; }

  /// Raw parameters for the allocation-free inference path.
  const Matrix& weight() const { return w_->value(); }
  const Matrix& bias() const { return b_->value(); }

 private:
  std::size_t in_;
  std::size_t out_;
  Var w_;  // in x out
  Var b_;  // 1 x out
};

/// Single-layer LSTM encoder.
///
/// Gate layout along the 4H axis is [i | f | g | o]; the forget-gate bias is
/// initialized to +1 (standard remedy for early vanishing gradients).
/// `encode` runs the cell over a sequence of 1 x in vectors and returns the
/// final hidden state; an empty sequence encodes to the zero vector.
class Lstm {
 public:
  Lstm(std::size_t in, std::size_t hidden, ParamStore& store, util::Rng& rng);

  struct State {
    Var h;
    Var c;
  };

  /// Zero initial state.
  State initialState() const;

  /// One timestep: (x, state) -> state'.
  State step(const Var& x, const State& state) const;

  /// Final hidden vector of the sequence (1 x hidden).
  Var encode(const std::vector<Var>& sequence) const;

  /// Hidden vector after every timestep (sequence.size() entries). Used to
  /// stack LSTM layers (the paper's two-layer combiners in Figure 2).
  std::vector<Var> encodeAll(const std::vector<Var>& sequence) const;

  std::size_t inDim() const { return in_; }
  std::size_t hiddenDim() const { return hidden_; }

  /// Raw parameters for the allocation-free inference path.
  const Matrix& weightX() const { return wx_->value(); }
  const Matrix& weightH() const { return wh_->value(); }
  const Matrix& biasRaw() const { return b_->value(); }

 private:
  std::size_t in_;
  std::size_t hidden_;
  Var wx_;  // in x 4H
  Var wh_;  // H x 4H
  Var b_;   // 1 x 4H
};

}  // namespace netsyn::nn
