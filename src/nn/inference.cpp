#include "nn/inference.hpp"

#include <cmath>
#include <cstring>

namespace netsyn::nn {
namespace {

inline float sigmoidf(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

/// z += x * W for row-major W (in x out).
inline void addVecMat(const float* x, std::size_t in, const Matrix& w,
                      float* z) {
  const std::size_t out = w.cols();
  for (std::size_t i = 0; i < in; ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    const float* row = w.data() + i * out;
    for (std::size_t j = 0; j < out; ++j) z[j] += xv * row[j];
  }
}

}  // namespace

void lstmStepFast(const Lstm& lstm, const float* x, float* h, float* c,
                  InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  const std::size_t g4 = 4 * hd;
  scratch.ensure(g4);
  float* z = scratch.z.data();
  std::memcpy(z, lstm.biasRaw().data(), g4 * sizeof(float));
  addVecMat(x, lstm.inDim(), lstm.weightX(), z);
  addVecMat(h, hd, lstm.weightH(), z);
  // Gate layout [i | f | g | o], as in Lstm::step.
  for (std::size_t j = 0; j < hd; ++j) {
    const float ig = sigmoidf(z[j]);
    const float fg = sigmoidf(z[hd + j]);
    const float gg = std::tanh(z[2 * hd + j]);
    const float og = sigmoidf(z[3 * hd + j]);
    c[j] = fg * c[j] + ig * gg;
    h[j] = og * std::tanh(c[j]);
  }
}

void lstmEncodeTokensFast(const Lstm& lstm, const Embedding& embedding,
                          const std::vector<std::size_t>& tokens, float* h,
                          InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  std::vector<float> c(hd, 0.0f);
  std::memset(h, 0, hd * sizeof(float));
  const Matrix& table = embedding.table();
  for (std::size_t t : tokens) {
    const float* x = table.data() + t * embedding.dim();
    lstmStepFast(lstm, x, h, c.data(), scratch);
  }
}

void lstmEncodeVectorsFast(const Lstm& lstm,
                           const std::vector<const float*>& xs, float* h,
                           InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  std::vector<float> c(hd, 0.0f);
  std::memset(h, 0, hd * sizeof(float));
  for (const float* x : xs) lstmStepFast(lstm, x, h, c.data(), scratch);
}

void linearForwardFast(const Linear& linear, const float* x, float* out) {
  std::memcpy(out, linear.bias().data(), linear.outDim() * sizeof(float));
  addVecMat(x, linear.inDim(), linear.weight(), out);
}

void reluFast(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (x[i] < 0.0f) x[i] = 0.0f;
}

}  // namespace netsyn::nn
