#include "nn/inference.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace netsyn::nn {
namespace {

inline float sigmoidf(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

/// z += x * W for row-major W (in x out).
inline void addVecMat(const float* x, std::size_t in, const Matrix& w,
                      float* z) {
  const std::size_t out = w.cols();
  for (std::size_t i = 0; i < in; ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    const float* row = w.data() + i * out;
    for (std::size_t j = 0; j < out; ++j) z[j] += xv * row[j];
  }
}

/// Four rows of z += x * W sharing one pass over W: each weight row is
/// loaded once and accumulated into four outputs held in registers. The
/// weights in this model are L1-resident, so the win is load-port pressure
/// and instruction-level parallelism rather than DRAM traffic — but it is
/// the classic register-blocking shape either way. For every row the
/// accumulation order (ascending i, one multiply-add per j, skip on exact
/// zero) is addVecMat's, so results are bitwise identical.
inline void addVecMat4(const float* x0, const float* x1, const float* x2,
                       const float* x3, std::size_t in, const Matrix& w,
                       float* z0, float* z1, float* z2, float* z3) {
  const std::size_t out = w.cols();
  for (std::size_t i = 0; i < in; ++i) {
    const float a0 = x0[i], a1 = x1[i], a2 = x2[i], a3 = x3[i];
    const float* row = w.data() + i * out;
    if (a0 != 0.0f && a1 != 0.0f && a2 != 0.0f && a3 != 0.0f) {
      for (std::size_t j = 0; j < out; ++j) {
        const float r = row[j];
        z0[j] += a0 * r;
        z1[j] += a1 * r;
        z2[j] += a2 * r;
        z3[j] += a3 * r;
      }
    } else {
      // A zero entry must skip its row's accumulation (addVecMat semantics);
      // fall back to per-row loops for this i only.
      if (a0 != 0.0f)
        for (std::size_t j = 0; j < out; ++j) z0[j] += a0 * row[j];
      if (a1 != 0.0f)
        for (std::size_t j = 0; j < out; ++j) z1[j] += a1 * row[j];
      if (a2 != 0.0f)
        for (std::size_t j = 0; j < out; ++j) z2[j] += a2 * row[j];
      if (a3 != 0.0f)
        for (std::size_t j = 0; j < out; ++j) z3[j] += a3 * row[j];
    }
  }
}

}  // namespace

void addVecMatBatch(const float* x, std::size_t xStride, std::size_t batch,
                    std::size_t in, const Matrix& w, float* z,
                    std::size_t zStride, const std::uint8_t* active) {
  // Compact active rows into blocks of four so masked-out lanes cost
  // nothing and ragged tails still get the blocked path where possible.
  std::size_t idx[4];
  std::size_t n = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    if (active != nullptr && active[b] == 0) continue;
    idx[n++] = b;
    if (n < 4) continue;
    addVecMat4(x + idx[0] * xStride, x + idx[1] * xStride,
               x + idx[2] * xStride, x + idx[3] * xStride, in, w,
               z + idx[0] * zStride, z + idx[1] * zStride,
               z + idx[2] * zStride, z + idx[3] * zStride);
    n = 0;
  }
  for (std::size_t k = 0; k < n; ++k)
    addVecMat(x + idx[k] * xStride, in, w, z + idx[k] * zStride);
}

void lstmStepFast(const Lstm& lstm, const float* x, float* h, float* c,
                  InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  const std::size_t g4 = 4 * hd;
  scratch.ensure(g4);
  float* z = scratch.z.data();
  std::memcpy(z, lstm.biasRaw().data(), g4 * sizeof(float));
  addVecMat(x, lstm.inDim(), lstm.weightX(), z);
  addVecMat(h, hd, lstm.weightH(), z);
  // Gate layout [i | f | g | o], as in Lstm::step.
  for (std::size_t j = 0; j < hd; ++j) {
    const float ig = sigmoidf(z[j]);
    const float fg = sigmoidf(z[hd + j]);
    const float gg = std::tanh(z[2 * hd + j]);
    const float og = sigmoidf(z[3 * hd + j]);
    c[j] = fg * c[j] + ig * gg;
    h[j] = og * std::tanh(c[j]);
  }
}

void lstmEncodeTokensFast(const Lstm& lstm, const Embedding& embedding,
                          const std::vector<std::size_t>& tokens, float* h,
                          InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  float* c = scratch.ensureC(hd);
  std::memset(c, 0, hd * sizeof(float));
  std::memset(h, 0, hd * sizeof(float));
  const Matrix& table = embedding.table();
  for (std::size_t t : tokens) {
    const float* x = table.data() + t * embedding.dim();
    lstmStepFast(lstm, x, h, c, scratch);
  }
}

void lstmEncodeVectorsFast(const Lstm& lstm,
                           const std::vector<const float*>& xs, float* h,
                           InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  float* c = scratch.ensureC(hd);
  std::memset(c, 0, hd * sizeof(float));
  std::memset(h, 0, hd * sizeof(float));
  for (const float* x : xs) lstmStepFast(lstm, x, h, c, scratch);
}

void linearForwardFast(const Linear& linear, const float* x, float* out) {
  std::memcpy(out, linear.bias().data(), linear.outDim() * sizeof(float));
  addVecMat(x, linear.inDim(), linear.weight(), out);
}

void lstmStepBatchFast(const Lstm& lstm, const float* x, std::size_t batch,
                       float* h, float* c, InferenceScratch& scratch,
                       const std::uint8_t* active) {
  const std::size_t in = lstm.inDim();
  const std::size_t hd = lstm.hiddenDim();
  const std::size_t g4 = 4 * hd;
  scratch.ensure(batch * g4);
  float* z = scratch.z.data();
  // Z = bias broadcast + X * Wx + H * Wh as blocked matrix-matrix products.
  // Inactive lanes are skipped end to end: no bias copy, no gate math, no
  // matmul rows — their h/c state (and dead z rows) stay untouched.
  const float* bias = lstm.biasRaw().data();
  for (std::size_t b = 0; b < batch; ++b) {
    if (active != nullptr && active[b] == 0) continue;
    std::memcpy(z + b * g4, bias, g4 * sizeof(float));
  }
  addVecMatBatch(x, in, batch, in, lstm.weightX(), z, g4, active);
  addVecMatBatch(h, hd, batch, hd, lstm.weightH(), z, g4, active);
  for (std::size_t b = 0; b < batch; ++b) {
    if (active != nullptr && active[b] == 0) continue;
    float* zb = z + b * g4;
    float* hb = h + b * hd;
    float* cb = c + b * hd;
    for (std::size_t j = 0; j < hd; ++j) {
      const float ig = sigmoidf(zb[j]);
      const float fg = sigmoidf(zb[hd + j]);
      const float gg = std::tanh(zb[2 * hd + j]);
      const float og = sigmoidf(zb[3 * hd + j]);
      cb[j] = fg * cb[j] + ig * gg;
      hb[j] = og * std::tanh(cb[j]);
    }
  }
}

void lstmEncodeTokensBatchFast(
    const Lstm& lstm, const Embedding& embedding,
    const std::vector<std::vector<std::size_t>>& tokens, float* h,
    InferenceScratch& scratch) {
  const std::size_t batch = tokens.size();
  const std::size_t hd = lstm.hiddenDim();
  const std::size_t e = embedding.dim();
  std::size_t maxLen = 0;
  for (const auto& seq : tokens) maxLen = std::max(maxLen, seq.size());
  std::memset(h, 0, batch * hd * sizeof(float));
  if (maxLen == 0) return;

  float* c = scratch.ensureC(batch * hd);
  std::memset(c, 0, batch * hd * sizeof(float));
  float* x = scratch.ensureX(batch * e);
  std::uint8_t* active = scratch.ensureActive(batch);
  const Matrix& table = embedding.table();
  for (std::size_t t = 0; t < maxLen; ++t) {
    for (std::size_t b = 0; b < batch; ++b) {
      active[b] = t < tokens[b].size() ? 1 : 0;
      if (active[b])
        std::memcpy(x + b * e, table.data() + tokens[b][t] * e,
                    e * sizeof(float));
    }
    lstmStepBatchFast(lstm, x, batch, h, c, scratch, active);
  }
}

void lstmEncodeVectorsBatchFast(const Lstm& lstm,
                                const std::vector<const float*>& xs,
                                std::size_t batch, float* h,
                                InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  float* c = scratch.ensureC(batch * hd);
  std::memset(c, 0, batch * hd * sizeof(float));
  std::memset(h, 0, batch * hd * sizeof(float));
  for (const float* x : xs) lstmStepBatchFast(lstm, x, batch, h, c, scratch);
}

void linearForwardBatchFast(const Linear& linear, const float* x,
                            std::size_t batch, float* out) {
  const std::size_t in = linear.inDim();
  const std::size_t o = linear.outDim();
  for (std::size_t b = 0; b < batch; ++b)
    std::memcpy(out + b * o, linear.bias().data(), o * sizeof(float));
  addVecMatBatch(x, in, batch, in, linear.weight(), out, o);
}

void reluFast(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (x[i] < 0.0f) x[i] = 0.0f;
}

}  // namespace netsyn::nn
