#include "nn/inference.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

namespace netsyn::nn {
namespace {

inline float sigmoidf(float x) {
  return x >= 0.0f ? 1.0f / (1.0f + std::exp(-x))
                   : std::exp(x) / (1.0f + std::exp(x));
}

/// z += x * W for row-major W (in x out).
inline void addVecMat(const float* x, std::size_t in, const Matrix& w,
                      float* z) {
  const std::size_t out = w.cols();
  for (std::size_t i = 0; i < in; ++i) {
    const float xv = x[i];
    if (xv == 0.0f) continue;
    const float* row = w.data() + i * out;
    for (std::size_t j = 0; j < out; ++j) z[j] += xv * row[j];
  }
}

}  // namespace

void lstmStepFast(const Lstm& lstm, const float* x, float* h, float* c,
                  InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  const std::size_t g4 = 4 * hd;
  scratch.ensure(g4);
  float* z = scratch.z.data();
  std::memcpy(z, lstm.biasRaw().data(), g4 * sizeof(float));
  addVecMat(x, lstm.inDim(), lstm.weightX(), z);
  addVecMat(h, hd, lstm.weightH(), z);
  // Gate layout [i | f | g | o], as in Lstm::step.
  for (std::size_t j = 0; j < hd; ++j) {
    const float ig = sigmoidf(z[j]);
    const float fg = sigmoidf(z[hd + j]);
    const float gg = std::tanh(z[2 * hd + j]);
    const float og = sigmoidf(z[3 * hd + j]);
    c[j] = fg * c[j] + ig * gg;
    h[j] = og * std::tanh(c[j]);
  }
}

void lstmEncodeTokensFast(const Lstm& lstm, const Embedding& embedding,
                          const std::vector<std::size_t>& tokens, float* h,
                          InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  std::vector<float> c(hd, 0.0f);
  std::memset(h, 0, hd * sizeof(float));
  const Matrix& table = embedding.table();
  for (std::size_t t : tokens) {
    const float* x = table.data() + t * embedding.dim();
    lstmStepFast(lstm, x, h, c.data(), scratch);
  }
}

void lstmEncodeVectorsFast(const Lstm& lstm,
                           const std::vector<const float*>& xs, float* h,
                           InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  std::vector<float> c(hd, 0.0f);
  std::memset(h, 0, hd * sizeof(float));
  for (const float* x : xs) lstmStepFast(lstm, x, h, c.data(), scratch);
}

void linearForwardFast(const Linear& linear, const float* x, float* out) {
  std::memcpy(out, linear.bias().data(), linear.outDim() * sizeof(float));
  addVecMat(x, linear.inDim(), linear.weight(), out);
}

void lstmStepBatchFast(const Lstm& lstm, const float* x, std::size_t batch,
                       float* h, float* c, InferenceScratch& scratch,
                       const std::uint8_t* active) {
  const std::size_t in = lstm.inDim();
  const std::size_t hd = lstm.hiddenDim();
  const std::size_t g4 = 4 * hd;
  scratch.ensure(batch * g4);
  float* z = scratch.z.data();
  // Z = bias broadcast + X * Wx + H * Wh, one matrix-matrix product per
  // weight. Row-wise accumulation order matches lstmStepFast bitwise.
  const float* bias = lstm.biasRaw().data();
  for (std::size_t b = 0; b < batch; ++b)
    std::memcpy(z + b * g4, bias, g4 * sizeof(float));
  for (std::size_t b = 0; b < batch; ++b)
    addVecMat(x + b * in, in, lstm.weightX(), z + b * g4);
  for (std::size_t b = 0; b < batch; ++b)
    addVecMat(h + b * hd, hd, lstm.weightH(), z + b * g4);
  for (std::size_t b = 0; b < batch; ++b) {
    if (active != nullptr && active[b] == 0) continue;
    float* zb = z + b * g4;
    float* hb = h + b * hd;
    float* cb = c + b * hd;
    for (std::size_t j = 0; j < hd; ++j) {
      const float ig = sigmoidf(zb[j]);
      const float fg = sigmoidf(zb[hd + j]);
      const float gg = std::tanh(zb[2 * hd + j]);
      const float og = sigmoidf(zb[3 * hd + j]);
      cb[j] = fg * cb[j] + ig * gg;
      hb[j] = og * std::tanh(cb[j]);
    }
  }
}

void lstmEncodeTokensBatchFast(
    const Lstm& lstm, const Embedding& embedding,
    const std::vector<std::vector<std::size_t>>& tokens, float* h,
    InferenceScratch& scratch) {
  const std::size_t batch = tokens.size();
  const std::size_t hd = lstm.hiddenDim();
  const std::size_t e = embedding.dim();
  std::size_t maxLen = 0;
  for (const auto& seq : tokens) maxLen = std::max(maxLen, seq.size());
  std::memset(h, 0, batch * hd * sizeof(float));
  if (maxLen == 0) return;

  std::vector<float> c(batch * hd, 0.0f);
  std::vector<float> x(batch * e, 0.0f);
  std::vector<std::uint8_t> active(batch);
  const Matrix& table = embedding.table();
  for (std::size_t t = 0; t < maxLen; ++t) {
    for (std::size_t b = 0; b < batch; ++b) {
      active[b] = t < tokens[b].size() ? 1 : 0;
      if (active[b])
        std::memcpy(x.data() + b * e, table.data() + tokens[b][t] * e,
                    e * sizeof(float));
    }
    lstmStepBatchFast(lstm, x.data(), batch, h, c.data(), scratch,
                      active.data());
  }
}

void lstmEncodeVectorsBatchFast(const Lstm& lstm,
                                const std::vector<const float*>& xs,
                                std::size_t batch, float* h,
                                InferenceScratch& scratch) {
  const std::size_t hd = lstm.hiddenDim();
  std::vector<float> c(batch * hd, 0.0f);
  std::memset(h, 0, batch * hd * sizeof(float));
  for (const float* x : xs)
    lstmStepBatchFast(lstm, x, batch, h, c.data(), scratch);
}

void linearForwardBatchFast(const Linear& linear, const float* x,
                            std::size_t batch, float* out) {
  const std::size_t in = linear.inDim();
  const std::size_t o = linear.outDim();
  for (std::size_t b = 0; b < batch; ++b) {
    std::memcpy(out + b * o, linear.bias().data(), o * sizeof(float));
    addVecMat(x + b * in, in, linear.weight(), out + b * o);
  }
}

void reluFast(float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (x[i] < 0.0f) x[i] = 0.0f;
}

}  // namespace netsyn::nn
