// Dense row-major float matrix: the storage type of the NN substrate.
//
// The fitness-function models process one gene at a time (the GA evaluates
// genes sequentially), so all activations are small row vectors (1 x N) and
// parameters are small matrices; a minimal dense type is both sufficient and
// fast for the paper's architecture.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace netsyn::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  static Matrix zeros(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols, 0.0f);
  }

  /// 1 x n row vector from values.
  static Matrix row(std::vector<float> values) {
    const std::size_t n = values.size();
    return Matrix(1, n, std::move(values));
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool sameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float& at(std::size_t i) { return data_[i]; }
  float at(std::size_t i) const { return data_[i]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& vec() const { return data_; }

  void fill(float v) {
    for (auto& x : data_) x = v;
  }

  /// In-place a += b (shapes must match).
  void addInPlace(const Matrix& b) {
    assert(sameShape(b));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += b.data_[i];
  }

  /// In-place a += s * b.
  void axpyInPlace(float s, const Matrix& b) {
    assert(sameShape(b));
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * b.data_[i];
  }

  bool operator==(const Matrix&) const = default;

  std::string shapeString() const {
    return std::to_string(rows_) + "x" + std::to_string(cols_);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Row-major, (i,k,j) loop order for sequential access.
Matrix matmulValue(const Matrix& a, const Matrix& b);

/// C += A^T * B (used by matmul backward for the weight gradient).
void addATransposeB(Matrix& c, const Matrix& a, const Matrix& b);

/// C += A * B^T (used by matmul backward for the input gradient).
void addABTranspose(Matrix& c, const Matrix& a, const Matrix& b);

/// Numerically stable softmax of a 1 x n row vector.
Matrix softmaxValue(const Matrix& logits);

}  // namespace netsyn::nn
