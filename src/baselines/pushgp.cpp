#include "baselines/pushgp.hpp"

namespace netsyn::baselines {
namespace {

core::SynthesizerConfig plainGpConfig(core::GaConfig ga,
                                      dsl::GeneratorConfig gen) {
  core::SynthesizerConfig cfg;
  cfg.ga = ga;
  cfg.generator = gen;
  cfg.useNeighborhoodSearch = false;  // no NetSyn machinery
  cfg.fpGuidedMutation = false;
  return cfg;
}

}  // namespace

PushGpMethod::PushGpMethod(core::GaConfig ga, dsl::GeneratorConfig gen)
    : synthesizer_(plainGpConfig(ga, gen),
                   // Grade with the domain's output metric, like the Edit
                   // method this baseline is compared against.
                   std::make_shared<fitness::EditDistanceFitness>(
                       gen.domain)) {}

core::SynthesisResult PushGpMethod::synthesize(const dsl::Spec& spec,
                                               std::size_t targetLength,
                                               std::size_t budgetLimit,
                                               util::Rng& rng) {
  return synthesizer_.synthesize(spec, targetLength, budgetLimit, rng);
}

}  // namespace netsyn::baselines
