#include "baselines/pushgp.hpp"

namespace netsyn::baselines {
namespace {

core::SynthesizerConfig plainGpConfig(core::GaConfig ga) {
  core::SynthesizerConfig cfg;
  cfg.ga = ga;
  cfg.useNeighborhoodSearch = false;  // no NetSyn machinery
  cfg.fpGuidedMutation = false;
  return cfg;
}

}  // namespace

PushGpMethod::PushGpMethod(core::GaConfig ga)
    : synthesizer_(plainGpConfig(ga),
                   std::make_shared<fitness::EditDistanceFitness>()) {}

core::SynthesisResult PushGpMethod::synthesize(const dsl::Spec& spec,
                                               std::size_t targetLength,
                                               std::size_t budgetLimit,
                                               util::Rng& rng) {
  return synthesizer_.synthesize(spec, targetLength, budgetLimit, rng);
}

}  // namespace netsyn::baselines
