// Uniform interface for synthesis methods (NetSyn variants and baselines).
//
// Every method searches for a program equivalent to the spec within a fixed
// candidate budget; the harness treats them identically, which is exactly
// the paper's experimental control (§5: every approach gets the same
// 3,000,000-candidate maximum search space).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/synthesizer.hpp"
#include "dsl/spec.hpp"
#include "util/rng.hpp"

namespace netsyn::baselines {

class Method {
 public:
  virtual ~Method() = default;

  virtual std::string name() const = 0;

  /// Searches for a program of length <= targetLength equivalent to `spec`
  /// examining at most `budgetLimit` candidates.
  virtual core::SynthesisResult synthesize(const dsl::Spec& spec,
                                           std::size_t targetLength,
                                           std::size_t budgetLimit,
                                           util::Rng& rng) = 0;
};

using MethodPtr = std::shared_ptr<Method>;

/// Produces independent instances of one method. The parallel experiment
/// runner calls the factory once per worker thread, so a method (and the
/// models behind it) never has to be thread-safe — isolation is by
/// construction.
using MethodFactory = std::function<MethodPtr()>;

/// Adapter exposing a configured NetSyn synthesizer (any fitness function)
/// through the Method interface. `islandFitness` (optional) supplies
/// per-island fitness clones for Islands-strategy configurations — the same
/// isolation rule the parallel runner applies per worker, one level down.
class SynthesizerMethod final : public Method {
 public:
  SynthesizerMethod(std::string name, core::SynthesizerConfig config,
                    fitness::FitnessPtr fitnessFn,
                    std::shared_ptr<fitness::ProbMapProvider> probMap = nullptr,
                    core::IslandFitnessFactory islandFitness = nullptr)
      : name_(std::move(name)),
        synthesizer_(std::move(config), std::move(fitnessFn),
                     std::move(probMap), std::move(islandFitness)) {}

  std::string name() const override { return name_; }

  core::SynthesisResult synthesize(const dsl::Spec& spec,
                                   std::size_t targetLength,
                                   std::size_t budgetLimit,
                                   util::Rng& rng) override {
    return synthesizer_.synthesize(spec, targetLength, budgetLimit, rng);
  }

 private:
  std::string name_;
  core::Synthesizer synthesizer_;
};

}  // namespace netsyn::baselines
