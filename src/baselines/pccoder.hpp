// PCCoder-style baseline (Zohar & Wolf, 2018): stepwise synthesis with a
// learned next-function model and Complete Anytime Beam search (CAB).
//
// Our reimplementation preserves the search discipline on this repo's DSL:
// partial programs are extended one function at a time; a beam of width W
// keeps the highest-scoring prefixes (score = sum of log-probabilities under
// the learned function-probability map); every complete extension is checked
// against the spec. When a full pass fails, the beam width doubles and the
// search restarts (CAB), re-charging re-examined candidates exactly as the
// original does.
#pragma once

#include "baselines/method.hpp"
#include "fitness/neural_fitness.hpp"

namespace netsyn::baselines {

class PcCoderMethod final : public Method {
 public:
  PcCoderMethod(std::shared_ptr<fitness::ProbMapProvider> probMap,
                std::size_t initialBeamWidth = 32)
      : probMap_(std::move(probMap)), initialBeamWidth_(initialBeamWidth) {}

  std::string name() const override { return "PCCoder"; }

  core::SynthesisResult synthesize(const dsl::Spec& spec,
                                   std::size_t targetLength,
                                   std::size_t budgetLimit,
                                   util::Rng& rng) override;

 private:
  std::shared_ptr<fitness::ProbMapProvider> probMap_;
  std::size_t initialBeamWidth_;
};

}  // namespace netsyn::baselines
