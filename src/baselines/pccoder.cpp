#include "baselines/pccoder.hpp"

#include <algorithm>
#include <cmath>

#include "util/timer.hpp"

namespace netsyn::baselines {
namespace {

struct BeamEntry {
  std::vector<dsl::FuncId> prefix;
  double logProb = 0.0;
};

}  // namespace

core::SynthesisResult PcCoderMethod::synthesize(const dsl::Spec& spec,
                                                std::size_t targetLength,
                                                std::size_t budgetLimit,
                                                util::Rng&) {
  util::Timer timer;
  core::SynthesisResult result;
  core::SearchBudget budget(budgetLimit);
  core::SpecEvaluator evaluator(spec, budget);

  // Beam expansion ranges over the provider's domain vocabulary; log-probs
  // are domain-local-indexed like the map itself.
  const dsl::Domain& dom = probMap_->domain();
  const std::size_t vocab = dom.vocabSize();
  const auto map = probMap_->probMap(spec);
  std::vector<double> logp(vocab);
  for (std::size_t i = 0; i < vocab; ++i)
    logp[i] = std::log(std::max(map[i], 1e-6));

  // CAB: widen the beam and restart until found or budget exhausted.
  for (std::size_t width = initialBeamWidth_;
       !result.found && !budget.exhausted(); width *= 2) {
    std::vector<BeamEntry> beam = {BeamEntry{}};
    for (std::size_t depth = 1;
         depth <= targetLength && !result.found && !budget.exhausted();
         ++depth) {
      std::vector<BeamEntry> expanded;
      expanded.reserve(beam.size() * vocab);
      for (const auto& entry : beam) {
        for (std::size_t f = 0; f < vocab; ++f) {
          BeamEntry next;
          next.prefix = entry.prefix;
          next.prefix.push_back(dom.vocabulary[f]);
          next.logProb = entry.logProb + logp[f];
          expanded.push_back(std::move(next));
        }
      }
      std::stable_sort(expanded.begin(), expanded.end(),
                       [](const BeamEntry& a, const BeamEntry& b) {
                         return a.logProb > b.logProb;
                       });
      if (expanded.size() > width) expanded.resize(width);

      // Stepwise equivalence checks: every kept prefix is a candidate.
      for (const auto& entry : expanded) {
        const dsl::Program candidate{entry.prefix};
        const auto ok = evaluator.check(candidate);
        if (!ok.has_value()) break;  // budget exhausted
        if (*ok) {
          result.found = true;
          result.solution = candidate;
          break;
        }
      }
      beam = std::move(expanded);
    }
    // Safety: beyond |Sigma|^targetLength the beam cannot grow further.
    const double full = std::pow(static_cast<double>(vocab),
                                 static_cast<double>(targetLength));
    if (static_cast<double>(width) > full) break;
  }

  result.candidatesSearched = budget.used();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace netsyn::baselines
