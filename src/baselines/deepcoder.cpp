#include "baselines/deepcoder.hpp"

#include <algorithm>

#include "dsl/dce.hpp"
#include "util/timer.hpp"

namespace netsyn::baselines {
namespace {

struct Enumerator {
  core::SpecEvaluator& evaluator;
  const std::vector<dsl::FuncId>& order;  // functions, most probable first
  const dsl::InputSignature& sig;
  core::SynthesisResult& result;
  std::vector<dsl::FuncId> prefix;

  /// Depth-first enumeration of programs of exactly `remaining` more
  /// functions; returns true when the search should stop (found/budget).
  bool enumerate(std::size_t remaining) {
    if (remaining == 0) {
      const dsl::Program candidate{prefix};
      // Dead code => equivalent shorter program already covered: skip free.
      if (!dsl::isFullyLive(candidate, sig)) return false;
      const auto ok = evaluator.check(candidate);
      if (!ok.has_value()) return true;  // budget exhausted
      if (*ok) {
        result.found = true;
        result.solution = candidate;
        return true;
      }
      return false;
    }
    for (const dsl::FuncId f : order) {
      prefix.push_back(f);
      const bool stop = enumerate(remaining - 1);
      prefix.pop_back();
      if (stop) return true;
    }
    return false;
  }
};

}  // namespace

core::SynthesisResult DeepCoderMethod::synthesize(const dsl::Spec& spec,
                                                  std::size_t targetLength,
                                                  std::size_t budgetLimit,
                                                  util::Rng&) {
  util::Timer timer;
  core::SynthesisResult result;
  core::SearchBudget budget(budgetLimit);
  core::SpecEvaluator evaluator(spec, budget);
  const dsl::InputSignature sig = spec.signature();

  // Enumerate the provider's domain vocabulary, most probable first (the
  // map is domain-local-indexed; for the list domain this is the classic
  // all-Sigma sort).
  const dsl::Domain& dom = probMap_->domain();
  const auto map = probMap_->probMap(spec);
  std::vector<dsl::FuncId> order = dom.vocabulary;
  std::stable_sort(order.begin(), order.end(),
                   [&map, &dom](dsl::FuncId a, dsl::FuncId b) {
                     return map[dom.localIndex(a)] > map[dom.localIndex(b)];
                   });

  // Iterative deepening: shorter equivalents are found first (and cheaply).
  for (std::size_t length = 1;
       length <= targetLength && !result.found && !budget.exhausted();
       ++length) {
    Enumerator e{evaluator, order, sig, result, {}};
    e.prefix.reserve(length);
    e.enumerate(length);
  }

  result.candidatesSearched = budget.used();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace netsyn::baselines
