// RobustFill-style baseline (Devlin et al., 2017): an autoregressive model
// conditioned on the IO examples emits the program one token at a time; the
// search samples complete programs from the model until one satisfies the
// spec.
//
// Our reimplementation preserves the discipline on this repo's DSL: function
// tokens are sampled proportionally to the learned per-function probability
// map (temperature-scaled), one program per draw; each *distinct* sampled
// program is charged once against the budget. A duplicate cap raises the
// sampling temperature when the model's distribution collapses, mirroring
// the original's beam-diversity safeguards.
#pragma once

#include "baselines/method.hpp"
#include "fitness/neural_fitness.hpp"

namespace netsyn::baselines {

class RobustFillMethod final : public Method {
 public:
  RobustFillMethod(std::shared_ptr<fitness::ProbMapProvider> probMap,
                   double temperature = 1.0)
      : probMap_(std::move(probMap)), temperature_(temperature) {}

  std::string name() const override { return "RobustFill"; }

  core::SynthesisResult synthesize(const dsl::Spec& spec,
                                   std::size_t targetLength,
                                   std::size_t budgetLimit,
                                   util::Rng& rng) override;

 private:
  std::shared_ptr<fitness::ProbMapProvider> probMap_;
  double temperature_;
};

}  // namespace netsyn::baselines
