// DeepCoder-style baseline (Balog et al., 2017): a learned model predicts,
// from the IO examples alone, the probability that each DSL function appears
// in the target program; a guided enumerative search then explores programs
// in an order biased toward high-probability functions ("sort and add").
//
// Our reimplementation preserves the search discipline on this repo's DSL:
// iterative deepening over program lengths 1..targetLength with a
// depth-first enumeration whose branches are sorted by descending predicted
// probability. Programs with dead code are skipped without charge (they are
// semantically identical to a shorter, already-enumerated program).
#pragma once

#include "baselines/method.hpp"
#include "fitness/neural_fitness.hpp"

namespace netsyn::baselines {

class DeepCoderMethod final : public Method {
 public:
  explicit DeepCoderMethod(std::shared_ptr<fitness::ProbMapProvider> probMap)
      : probMap_(std::move(probMap)) {}

  std::string name() const override { return "DeepCoder"; }

  core::SynthesisResult synthesize(const dsl::Spec& spec,
                                   std::size_t targetLength,
                                   std::size_t budgetLimit,
                                   util::Rng& rng) override;

 private:
  std::shared_ptr<fitness::ProbMapProvider> probMap_;
};

}  // namespace netsyn::baselines
