#include "baselines/robustfill.hpp"

#include <cmath>
#include <unordered_set>

#include "util/timer.hpp"

namespace netsyn::baselines {

core::SynthesisResult RobustFillMethod::synthesize(const dsl::Spec& spec,
                                                   std::size_t targetLength,
                                                   std::size_t budgetLimit,
                                                   util::Rng& rng) {
  util::Timer timer;
  core::SynthesisResult result;
  core::SearchBudget budget(budgetLimit);
  core::SpecEvaluator evaluator(spec, budget);

  // Tokens are sampled from the provider's domain vocabulary (the map is
  // domain-local-indexed).
  const dsl::Domain& dom = probMap_->domain();
  const auto map = probMap_->probMap(spec);
  double temperature = temperature_;
  auto weightsFor = [&](double temp) {
    std::vector<double> w(dom.vocabSize());
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = std::pow(std::max(map[i], 1e-6), 1.0 / temp);
    return w;
  };
  std::vector<double> weights = weightsFor(temperature);

  std::unordered_set<std::string> seen;
  std::size_t consecutiveDuplicates = 0;
  while (!budget.exhausted() && !result.found) {
    std::vector<dsl::FuncId> fns;
    fns.reserve(targetLength);
    // Program length is sampled 1..targetLength (the decoder may emit the
    // end token early).
    const std::size_t length =
        1 + static_cast<std::size_t>(rng.uniform(targetLength));
    for (std::size_t k = 0; k < length; ++k)
      fns.push_back(dom.vocabulary[rng.roulette(weights)]);
    const dsl::Program candidate(std::move(fns));

    const std::string key(
        reinterpret_cast<const char*>(candidate.functions().data()),
        candidate.length());
    if (!seen.insert(key).second) {
      // Re-sampled an already-examined program: not a new candidate. If the
      // distribution has collapsed, flatten it so the search keeps moving.
      if (++consecutiveDuplicates > 200) {
        temperature *= 2.0;
        weights = weightsFor(temperature);
        consecutiveDuplicates = 0;
      }
      continue;
    }
    consecutiveDuplicates = 0;

    const auto ok = evaluator.check(candidate);
    if (!ok.has_value()) break;
    if (*ok) {
      result.found = true;
      result.solution = candidate;
    }
  }

  result.candidatesSearched = budget.used();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace netsyn::baselines
