// PushGP-style baseline (Perkis, 1994): plain genetic programming with the
// classic hand-crafted output-edit-distance fitness and no learned
// components, no neighborhood search, and no probability-guided mutation.
//
// The original operates on the Push language; as the paper's own comparison
// holds the candidate space fixed, our version runs the same GP loop over
// this repo's DSL (see DESIGN.md §5), isolating exactly the variable the
// paper studies: the fitness function.
#pragma once

#include "baselines/method.hpp"
#include "fitness/edit.hpp"

namespace netsyn::baselines {

class PushGpMethod final : public Method {
 public:
  /// `gen` carries the domain (null = list) so plain GP runs on the same
  /// vocabulary and input shapes as the methods it is compared against.
  explicit PushGpMethod(core::GaConfig ga = {}, dsl::GeneratorConfig gen = {});

  std::string name() const override { return "PushGP"; }

  core::SynthesisResult synthesize(const dsl::Spec& spec,
                                   std::size_t targetLength,
                                   std::size_t budgetLimit,
                                   util::Rng& rng) override;

 private:
  core::Synthesizer synthesizer_;
};

}  // namespace netsyn::baselines
