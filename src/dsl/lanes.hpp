// Structure-of-arrays trace store and the lane-parallel plan executor.
//
// `executePlanMulti` (interpreter.hpp) is statement-major: one compiled step
// is applied to all m spec examples back to back. The lane executor takes
// the final step and transposes the *storage* too: instead of m separate
// `ExecResult` traces of `Value`s, one `SoATrace` holds, per plan slot, a
// contiguous block of per-example ("lane") int payloads plus per-example
// list segments living in one shared arena with common offset/length
// tables. Concatenating every lane's list for a statement into one dense
// block is what lets the elementwise op families (MAP, ZIPWITH) run as a
// single SIMD loop over all examples at once (simd.hpp), instead of m short
// loops whose tails dominate at the paper's list lengths (~5-10 elements).
//
// Slot layout of one SoATrace (lanes = examples in the current group):
//
//           lane 0   lane 1  ...  lane L-1
//   slot 0  [ 0    |  0     | ... | 0     ]   Int default (paper: 0)
//   slot 1  [ ----- empty list lanes ---- ]   List default ([])
//   slot 2  [ ingested program input 0    ]
//   ...          ...
//   slot 2+I-1 [ ingested input I-1       ]
//   slot 2+I   [ outputs of statement 0   ]   <- ExecStep k writes 2+I+k
//   ...          ...
//
// Int slots store lane j at ints[slot*lanes + j]. List slots store lane j as
// arena[off[slot*lanes+j] .. +len[slot*lanes+j]); every producer writes its
// lanes *densely* (lane j+1's segment starts where lane j's ends), so a
// whole slot is also readable as one contiguous block of listTotal(slot)
// elements starting at off[slot*lanes] — the dense invariant the SIMD
// kernels rely on. The arena only ever grows (high-water mark), so steady
// state execution allocates nothing, mirroring the Value-slot reuse of the
// scalar path.
//
// Examples are processed in groups of up to kMaxLanes; the tail group just
// has fewer lanes (no masking — every block op takes an explicit element
// count). After a group executes, the trace is scattered back into the
// per-example `ExecResult::trace` slots, so `fitness/` and `core/`
// consumers read traces unchanged; the SoA form never escapes the executor.
//
// The scalar `executePlanMulti` stays intact as the differential-fuzz
// oracle: tests/test_fuzz_differential.cpp pins both paths trace-equal,
// slot by slot, over 12k random programs in the list and str domains.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "dsl/functions.hpp"
#include "dsl/value.hpp"

namespace netsyn::dsl {

struct ExecPlan;
struct ExecResult;

/// memcpy for lane segments that tolerates empty blocks: an empty list's
/// vector data() — and an empty arena's base pointer — may be null, and
/// memcpy's pointer arguments are declared nonnull even at size 0.
inline void copyLane(std::int32_t* dst, const std::int32_t* src,
                     std::size_t n) {
  if (n) std::memcpy(dst, src, n * sizeof(std::int32_t));
}

/// Structure-of-arrays execution trace for one lane group. See the file
/// comment for the slot layout and the dense invariant.
struct SoATrace {
  /// Examples per lane group. One group covers any realistic spec (the
  /// paper uses m=5..10 examples), so the common case is a single group
  /// with no tail; larger counts split and reuse the same storage.
  static constexpr std::size_t kMaxLanes = 32;

  /// Reserved leading slots: 0 = Int default, 1 = List default. Chosen so a
  /// Default ArgSource's payload index (0 = Int, 1 = List, assigned by
  /// compilePlanInto) is directly the slot id.
  static constexpr std::uint32_t kIntDefaultSlot = 0;
  static constexpr std::uint32_t kListDefaultSlot = 1;
  static constexpr std::uint32_t kFixedSlots = 2;

  std::size_t lanes = 0;  ///< examples in the current group
  std::size_t slots = 0;  ///< kFixedSlots + inputs + plan length

  std::vector<std::int32_t> ints;  ///< int payloads, [slot*lanes + lane]
  std::vector<std::uint32_t> off;  ///< arena offset of each list segment
  std::vector<std::uint32_t> len;  ///< element count of each list segment
  std::vector<std::int32_t> arena; ///< list elements, high-water storage
  std::size_t used = 0;            ///< arena elements in use

  // Pinned-ingest bookkeeping (see executePlanMultiLanes' reuseIngest): a
  // single-group ingest can be kept across calls when the caller guarantees
  // the example inputs are byte-stable — the spec of a search never changes,
  // so the transpose is paid once per spec instead of once per candidate.
  // The pinned input payloads occupy arena[0, pinnedUsed); statement
  // outputs are written above that watermark, and the input slots' table
  // rows are left untouched by every producer, so a matching later call
  // (same inputs array identity, lane count, and input count) skips the
  // ingest phase entirely. Any non-matching ingest invalidates the pin.
  const void* pinKey = nullptr;  ///< inputs array identity, null = no pin
  std::size_t pinLanes = 0;
  std::size_t pinInputs = 0;
  std::size_t pinnedUsed = 0;  ///< arena watermark protecting pinned inputs

  std::size_t seededLanes = 0;  ///< lane count the default slots are seeded for

  /// Re-shapes for a group, keeping capacity (and any pinned ingest). Seeds
  /// the two default slots (int lanes = 0, list lanes empty) when the lane
  /// count changed — their rows are never overwritten, so an unchanged
  /// shape keeps them; all other slots are written by the ingest/execute
  /// phases before any plan can read them.
  void reset(std::size_t laneCount, std::size_t slotCount) {
    lanes = laneCount;
    slots = slotCount;
    used = pinnedUsed;
    const std::size_t cells = lanes * slots;
    if (ints.size() < cells) {
      ints.resize(cells);
      off.resize(cells);
      len.resize(cells);
    }
    if (seededLanes != lanes) {
      for (std::size_t j = 0; j < lanes; ++j) {
        ints[kIntDefaultSlot * lanes + j] = 0;
        off[kListDefaultSlot * lanes + j] = 0;
        len[kListDefaultSlot * lanes + j] = 0;
      }
      seededLanes = lanes;
    }
  }

  std::int32_t* intBlock(std::uint32_t slot) {
    return ints.data() + slot * lanes;
  }
  const std::int32_t* intBlock(std::uint32_t slot) const {
    return ints.data() + slot * lanes;
  }
  std::uint32_t* offBlock(std::uint32_t slot) { return off.data() + slot * lanes; }
  std::uint32_t* lenBlock(std::uint32_t slot) { return len.data() + slot * lanes; }
  const std::uint32_t* offBlock(std::uint32_t slot) const {
    return off.data() + slot * lanes;
  }
  const std::uint32_t* lenBlock(std::uint32_t slot) const {
    return len.data() + slot * lanes;
  }

  /// Total elements across all lanes of a list slot (== the dense block's
  /// length, by the dense invariant).
  std::size_t listTotal(std::uint32_t slot) const {
    const std::uint32_t* l = lenBlock(slot);
    std::size_t total = 0;
    for (std::size_t j = 0; j < lanes; ++j) total += l[j];
    return total;
  }

  /// Reserves `n` more arena elements and returns the write cursor.
  /// May reallocate: producers must call grow() for their full output bound
  /// BEFORE taking any pointer into the arena (argument blocks included).
  /// grow() itself does not advance `used` — producers set their off/len
  /// entries and bump `used` (or call finishDense) as they fill.
  std::int32_t* grow(std::size_t n) {
    if (arena.size() < used + n)
      arena.resize(std::max(used + n, arena.size() * 2));
    return arena.data() + used;
  }

  /// For producers that filled lenBlock(slot) and wrote their elements
  /// densely at grow()'s cursor: assigns the offsets and advances `used`.
  void finishDense(std::uint32_t slot) {
    std::uint32_t* o = offBlock(slot);
    const std::uint32_t* l = lenBlock(slot);
    std::uint32_t cursor = static_cast<std::uint32_t>(used);
    for (std::size_t j = 0; j < lanes; ++j) {
      o[j] = cursor;
      cursor += l[j];
    }
    used = cursor;
  }
};

/// Zero-copy, per-statement view over one executed lane group. This is the
/// seam that lets trace consumers (the NN fitness encoders) read the SoA
/// blocks in place instead of forcing the executor to scatter every
/// intermediate value back into per-example `Value`s: `executePlanMultiLanesView`
/// runs the plan with NO scatter at all and binds one of these over the
/// scratch trace. Statement k's lane j is `intAt(k, j)` for Int-typed steps
/// or the arena segment `listAt(k, j, &len)` for List-typed ones.
///
/// The view aliases the executor's scratch `SoATrace`: it is valid only
/// until the next execution (or reset) of that trace, so consume-or-copy
/// before evaluating the next candidate.
struct LaneTraceView {
  const SoATrace* trace = nullptr;
  const ExecPlan* plan = nullptr;
  std::uint32_t base = 0;  ///< slot id of statement 0 (kFixedSlots + inputs)
  std::size_t lanes = 0;   ///< examples in the group
  std::size_t steps = 0;   ///< plan length (0 for the empty program)

  bool empty() const { return steps == 0; }

  /// Statement k's int lane block (only when stepType(k) == Type::Int).
  const std::int32_t* intLanes(std::size_t k) const {
    return trace->intBlock(base + static_cast<std::uint32_t>(k));
  }
  std::int32_t intAt(std::size_t k, std::size_t lane) const {
    return intLanes(k)[lane];
  }

  /// Statement k, lane `lane`'s list segment: arena pointer + element count
  /// (only when stepType(k) == Type::List).
  const std::int32_t* listAt(std::size_t k, std::size_t lane,
                             std::size_t* lenOut) const {
    const std::uint32_t slot = base + static_cast<std::uint32_t>(k);
    *lenOut = trace->lenBlock(slot)[lane];
    return trace->arena.data() + trace->offBlock(slot)[lane];
  }

  // Defined inline in interpreter.hpp (they need ExecStep, which this header
  // only forward-declares; every view consumer already includes the
  // interpreter).

  /// Return type of statement k.
  Type stepType(std::size_t k) const;
  /// True iff the final statement's output in `lane` equals `expected`. An
  /// empty plan compares against the default list, like ExecResult::output().
  bool outputEquals(std::size_t lane, const Value& expected) const;
};

/// Lane-group counterpart of executePlanMulti: executes `plan` on `count`
/// input tuples through `trace`, scattering each group's results into
/// `outs[j].trace` (resized to the plan length, slots overwritten in place
/// exactly like the scalar path). Results are bitwise-identical to
/// executePlanMulti — the saturating integer kernels have no
/// backend-dependent rounding — which the differential fuzz suite pins.
/// `trace` is caller-owned scratch (the Executor keeps one) so steady-state
/// execution allocates nothing.
///
/// `reuseIngest` opts into the pinned-ingest fast path: pass true ONLY when
/// `inputSets[0..count)` and every pointed-to input tuple are guaranteed
/// byte-stable since the previous reuseIngest call with the same array
/// (identity, not content, is what the pin checks — an owner like
/// SpecEvaluator whose spec is immutable for the search's lifetime).
/// Single-group counts only; larger counts ingest per group as usual.
void executePlanMultiLanes(const ExecPlan& plan,
                           const std::vector<Value>* const* inputSets,
                           std::size_t count, ExecResult* outs,
                           SoATrace& trace, bool reuseIngest = false);

/// Output-only variant: runs the same lane-group kernels but materializes
/// only the final statement's output per example into `outs[j]` (refilled in
/// place), skipping the intermediate-trace scatter entirely. That scatter is
/// the dominant cost of the full-trace path at the paper's list lengths, so
/// this is the fast path for consumers that only test Definition 3.1
/// equivalence (SpecEvaluator::check) and never read the trace. An empty
/// plan yields the default list for every example, matching
/// ExecResult::output(). Same `reuseIngest` contract as above.
void executePlanMultiLanesOutputs(const ExecPlan& plan,
                                  const std::vector<Value>* const* inputSets,
                                  std::size_t count, Value* outs,
                                  SoATrace& trace, bool reuseIngest = false);

/// No-scatter variant: runs the same lane-group kernels and materializes
/// NOTHING — `view` is bound over the executed trace so consumers read the
/// SoA blocks in place. This is the full-trace fast path for the NN fitness
/// encoders, which tokenize every intermediate value anyway and therefore
/// never need it as a `Value`. Single group only: requires
/// 1 <= count <= SoATrace::kMaxLanes (callers above that split per group and
/// must use the scattering entry points). Same `reuseIngest` contract as
/// executePlanMultiLanes. The view is valid until `trace` is next executed
/// or reset.
void executePlanMultiLanesView(const ExecPlan& plan,
                               const std::vector<Value>* const* inputSets,
                               std::size_t count, LaneTraceView& view,
                               SoATrace& trace, bool reuseIngest = false);

}  // namespace netsyn::dsl
