#include "dsl/domain.hpp"

#include <cassert>
#include <cstdio>

namespace netsyn::dsl {

GeneratorConfig Domain::makeGeneratorConfig() const {
  GeneratorConfig cfg = generatorDefaults;
  cfg.domain = this;
  return cfg;
}

void Domain::finalize() {
  assert(!vocabulary.empty());
  localOf.assign(kTotalFunctions, -1);
  intReturning.clear();
  listReturning.clear();
  for (std::size_t i = 0; i < vocabulary.size(); ++i) {
    const FuncId id = vocabulary[i];
    assert(id < kTotalFunctions);
    assert(i == 0 || vocabulary[i - 1] < id);  // ascending, no duplicates
    localOf[id] = static_cast<std::int32_t>(i);
    (functionInfo(id).returnType == Type::Int ? intReturning : listReturning)
        .push_back(id);
  }
}

std::string knownDomainNames() {
  std::string out;
  for (const Domain* d : allDomains()) {
    if (!out.empty()) out += ", ";
    out += d->name;
  }
  return out;
}

std::string renderValue(const Domain& domain, const Value& v) {
  if (!domain.textual || !v.isList()) return v.toString();
  std::string out = "\"";
  for (std::int32_t c : v.asList()) {
    if (c >= 0x20 && c < 0x7f) {
      if (c == '"' || c == '\\') out += '\\';
      out += static_cast<char>(c);
    } else {
      char buf[16];
      std::snprintf(buf, sizeof buf, "\\x%02x",
                    static_cast<unsigned>(c) & 0xff);
      out += buf;
    }
  }
  out += '"';
  return out;
}

}  // namespace netsyn::dsl
