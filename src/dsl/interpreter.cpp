#include "dsl/interpreter.hpp"

#include <cassert>

#include "dsl/simd.hpp"

namespace netsyn::dsl {
namespace {

/// Argument sources for Default plan entries, indexed by the type tag the
/// compiler stored in ArgSource::index (0 = Int, 1 = List). The list
/// default is the one shared kEmptyListValue instance.
const Value kIntDefault{std::int32_t{0}};
const Value* const kDefaults[2] = {&kIntDefault, &kEmptyListValue};

/// Shared resolution core: computes each statement's StatementPlan and
/// hands it to `emit(k, plan)`. Single source of truth for computeArgPlan
/// (dead-code analysis) and compilePlanInto (execution), so the two can
/// never drift.
template <typename Emit>
void resolveArgs(const Program& program, const InputSignature& inputs,
                 Emit&& emit) {
  // Return types of all statements, computed once: the source scans below
  // consult them O(L) times per slot, and a table lookup beats a repeated
  // functionInfo call. Stack buffer for every realistic program length.
  constexpr std::size_t kMaxStackLen = 128;
  std::array<Type, kMaxStackLen> stackTypes;
  std::vector<Type> heapTypes;
  Type* stmtType = stackTypes.data();
  if (program.length() > kMaxStackLen) {
    heapTypes.resize(program.length());
    stmtType = heapTypes.data();
  }
  for (std::size_t k = 0; k < program.length(); ++k)
    stmtType[k] = functionInfo(program.at(k)).returnType;
  const auto typeOf = [&](const ArgSource& s) {
    return s.kind == ArgSource::Kind::Statement ? stmtType[s.index]
                                                : inputs[s.index];
  };

  for (std::size_t k = 0; k < program.length(); ++k) {
    const FunctionInfo& info = functionInfo(program.at(k));
    StatementPlan sp;
    sp.arity = info.arity;

    // Candidate sources in recency order: statements k-1..0, then program
    // inputs from last to first (inputs behave as if executed, in order,
    // before the first statement).
    auto forEachSource = [&](auto&& visit) {
      for (std::size_t j = k; j-- > 0;) {
        if (visit(ArgSource{ArgSource::Kind::Statement,
                            static_cast<std::uint16_t>(j)}))
          return;
      }
      for (std::size_t j = inputs.size(); j-- > 0;) {
        if (visit(ArgSource{ArgSource::Kind::Input,
                            static_cast<std::uint16_t>(j)}))
          return;
      }
    };

    // Each slot takes the most recent matching source not already consumed
    // by an earlier slot of this statement.
    std::array<bool, kMaxArity> filled{};
    for (std::size_t slot = 0; slot < info.arity; ++slot) {
      const Type want = info.argTypes[slot];
      forEachSource([&](const ArgSource& src) {
        if (typeOf(src) != want) return false;
        for (std::size_t prev = 0; prev < slot; ++prev)
          if (filled[prev] && sp.args[prev] == src) return false;  // consumed
        sp.args[slot] = src;
        filled[slot] = true;
        return true;
      });
    }
    // Unfilled slots: reuse the most recent matching source (duplicate use is
    // allowed when it is the only producer), else the type default.
    for (std::size_t slot = 0; slot < info.arity; ++slot) {
      if (filled[slot]) continue;
      const Type want = info.argTypes[slot];
      sp.args[slot] = ArgSource{};  // Default
      forEachSource([&](const ArgSource& src) {
        if (typeOf(src) != want) return false;
        sp.args[slot] = src;
        return true;
      });
    }
    emit(k, sp);
  }
}

}  // namespace

ArgPlan computeArgPlan(const Program& program, const InputSignature& inputs) {
  ArgPlan plan(program.length());
  resolveArgs(program, inputs,
              [&](std::size_t k, const StatementPlan& sp) { plan[k] = sp; });
  return plan;
}

ExecPlan compilePlan(const Program& program, const InputSignature& inputs) {
  ExecPlan compiled;
  compilePlanInto(program, inputs, compiled);
  return compiled;
}

void compilePlanInto(const Program& program, const InputSignature& inputs,
                     ExecPlan& compiled) {
  compiled.steps.resize(program.length());
  resolveArgs(program, inputs, [&](std::size_t k, const StatementPlan& sp) {
    ExecStep& step = compiled.steps[k];
    step.fn = program.at(k);
    step.arity = sp.arity;
    step.args = sp.args;
    step.body = functionBody(step.fn);
    step.shape = step.body.unary ? ExecStep::Shape::Unary
                 : step.body.intList ? ExecStep::Shape::IntList
                                     : ExecStep::Shape::ListList;
    step.lane = functionLaneKernel(step.fn);
    // Default sources carry the slot's type in `index` (0 = Int, 1 = List)
    // so execution never consults functionInfo for argument types.
    const FunctionInfo& info = functionInfo(step.fn);
    step.ret = info.returnType;
    for (std::size_t slot = 0; slot < step.arity; ++slot) {
      if (step.args[slot].kind == ArgSource::Kind::Default)
        step.args[slot].index =
            info.argTypes[slot] == Type::List ? 1 : 0;
    }
  });
}

void executePlan(const ExecPlan& plan, const std::vector<Value>& inputs,
                 ExecResult& out) {
  const std::size_t n = plan.steps.size();
  out.trace.resize(n);
  const auto resolve = [&](const ArgSource& src) -> const Value* {
    switch (src.kind) {
      case ArgSource::Kind::Statement:
        return &out.trace[src.index];
      case ArgSource::Kind::Input:
        return &inputs[src.index];
      case ArgSource::Kind::Default:
        break;
    }
    return kDefaults[src.index];
  };
  for (std::size_t k = 0; k < n; ++k) {
    const ExecStep& step = plan.steps[k];
    Value& slot = out.trace[k];
    // Direct body call through the pointer compiled into the step: no
    // dispatch-table access, no re-validation (the plan is the type proof).
    switch (step.shape) {
      case ExecStep::Shape::Unary:
        step.body.unary(resolve(step.args[0])->listUnchecked(), slot);
        break;
      case ExecStep::Shape::IntList:
        step.body.intList(resolve(step.args[0])->intUnchecked(),
                          resolve(step.args[1])->listUnchecked(), slot);
        break;
      case ExecStep::Shape::ListList:
        step.body.listList(resolve(step.args[0])->listUnchecked(),
                           resolve(step.args[1])->listUnchecked(), slot);
        break;
    }
  }
}

void executePlanMulti(const ExecPlan& plan,
                      const std::vector<Value>* const* inputSets,
                      std::size_t count, ExecResult* outs) {
  const std::size_t n = plan.steps.size();
  for (std::size_t j = 0; j < count; ++j) outs[j].trace.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const ExecStep& step = plan.steps[k];
    const auto resolve = [&](std::size_t j,
                             const ArgSource& src) -> const Value* {
      switch (src.kind) {
        case ArgSource::Kind::Statement:
          return &outs[j].trace[src.index];
        case ArgSource::Kind::Input:
          return &(*inputSets[j])[src.index];
        case ArgSource::Kind::Default:
          break;
      }
      return kDefaults[src.index];
    };
    switch (step.shape) {
      case ExecStep::Shape::Unary:
        for (std::size_t j = 0; j < count; ++j)
          step.body.unary(resolve(j, step.args[0])->listUnchecked(),
                          outs[j].trace[k]);
        break;
      case ExecStep::Shape::IntList:
        for (std::size_t j = 0; j < count; ++j)
          step.body.intList(resolve(j, step.args[0])->intUnchecked(),
                            resolve(j, step.args[1])->listUnchecked(),
                            outs[j].trace[k]);
        break;
      case ExecStep::Shape::ListList:
        for (std::size_t j = 0; j < count; ++j)
          step.body.listList(resolve(j, step.args[0])->listUnchecked(),
                             resolve(j, step.args[1])->listUnchecked(),
                             outs[j].trace[k]);
        break;
    }
  }
}

std::uint64_t Executor::keyOf(const Program& program,
                              const std::vector<Value>& inputs) {
  std::uint64_t h = program.hash();
  h ^= 0xa5;  // domain separator: program bytes vs signature bytes
  h *= 0x100000001b3ULL;
  for (const Value& v : inputs) {
    h ^= static_cast<std::uint64_t>(v.type()) + 1;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t Executor::keyOf(const Program& program,
                              const InputSignature& sig) {
  std::uint64_t h = program.hash();
  h ^= 0xa5;
  h *= 0x100000001b3ULL;
  for (Type t : sig) {
    h ^= static_cast<std::uint64_t>(t) + 1;
    h *= 0x100000001b3ULL;
  }
  return h;
}

const ExecPlan& Executor::planForKey(std::uint64_t key,
                                     const Program& program,
                                     const InputSignature& sig) {
  ++lookups_;
  Slot& slot = slots_[key & (kSlots - 1)];
  // Exact hit test: the fingerprint routes to the slot, the stored function
  // sequence + signature confirm identity (collisions recompile, nothing
  // more). The compares are short contiguous byte/enum ranges.
  if (!slot.used || slot.key != key || slot.functions != program.functions() ||
      slot.sig != sig) {
    compilePlanInto(program, sig, slot.plan);  // reuses the slot's storage
    slot.functions.assign(program.functions().begin(),
                          program.functions().end());
    slot.sig.assign(sig.begin(), sig.end());
    if (!slot.used) ++occupied_;
    slot.key = key;
    slot.used = true;
    ++compiles_;
  }
  return slot.plan;
}

const ExecPlan& Executor::planFor(const Program& program,
                                  const InputSignature& sig) {
  return planForKey(keyOf(program, sig), program, sig);
}

void Executor::runInto(const Program& program,
                       const std::vector<Value>& inputs, ExecResult& out) {
  sigScratch_.clear();
  for (const Value& v : inputs) sigScratch_.push_back(v.type());
  executePlan(planForKey(keyOf(program, inputs), program, sigScratch_),
              inputs, out);
}

const char* Executor::backendName() { return simd::backendName(); }

void Executor::clearPlanCache() {
  for (Slot& s : slots_) s.used = false;
  occupied_ = 0;
}

const Value& Executor::evalInto(const Program& program,
                                const std::vector<Value>& inputs) {
  runInto(program, inputs, scratch_);
  return scratch_.output();
}

ExecResult run(const Program& program, const std::vector<Value>& inputs) {
  ExecResult result;
  executePlan(compilePlan(program, signatureOf(inputs)), inputs, result);
  return result;
}

Value eval(const Program& program, const std::vector<Value>& inputs) {
  return run(program, inputs).output();
}

InputSignature signatureOf(const std::vector<Value>& inputs) {
  InputSignature sig;
  sig.reserve(inputs.size());
  for (const Value& v : inputs) sig.push_back(v.type());
  return sig;
}

}  // namespace netsyn::dsl
