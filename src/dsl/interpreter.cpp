#include "dsl/interpreter.hpp"

#include <cassert>

namespace netsyn::dsl {
namespace {

/// Type of the value a source would produce.
Type sourceType(const ArgSource& s, const Program& program,
                const InputSignature& inputs) {
  switch (s.kind) {
    case ArgSource::Kind::Statement:
      return functionInfo(program.at(s.index)).returnType;
    case ArgSource::Kind::Input:
      return inputs.at(s.index);
    case ArgSource::Kind::Default:
      return Type::Int;  // unused
  }
  return Type::Int;
}

}  // namespace

ArgPlan computeArgPlan(const Program& program, const InputSignature& inputs) {
  ArgPlan plan(program.length());
  for (std::size_t k = 0; k < program.length(); ++k) {
    const FunctionInfo& info = functionInfo(program.at(k));
    StatementPlan& sp = plan[k];
    sp.arity = info.arity;

    // Candidate sources in recency order: statements k-1..0, then program
    // inputs from last to first (inputs behave as if executed, in order,
    // before the first statement).
    auto forEachSource = [&](auto&& visit) {
      for (std::size_t j = k; j-- > 0;) {
        if (visit(ArgSource{ArgSource::Kind::Statement,
                            static_cast<std::uint16_t>(j)}))
          return;
      }
      for (std::size_t j = inputs.size(); j-- > 0;) {
        if (visit(ArgSource{ArgSource::Kind::Input,
                            static_cast<std::uint16_t>(j)}))
          return;
      }
    };

    // Each slot takes the most recent matching source not already consumed
    // by an earlier slot of this statement.
    std::array<bool, kMaxArity> filled{};
    for (std::size_t slot = 0; slot < info.arity; ++slot) {
      const Type want = info.argTypes[slot];
      forEachSource([&](const ArgSource& src) {
        if (sourceType(src, program, inputs) != want) return false;
        for (std::size_t prev = 0; prev < slot; ++prev)
          if (filled[prev] && sp.args[prev] == src) return false;  // consumed
        sp.args[slot] = src;
        filled[slot] = true;
        return true;
      });
    }
    // Unfilled slots: reuse the most recent matching source (duplicate use is
    // allowed when it is the only producer), else the type default.
    for (std::size_t slot = 0; slot < info.arity; ++slot) {
      if (filled[slot]) continue;
      const Type want = info.argTypes[slot];
      sp.args[slot] = ArgSource{};  // Default
      forEachSource([&](const ArgSource& src) {
        if (sourceType(src, program, inputs) != want) return false;
        sp.args[slot] = src;
        return true;
      });
    }
  }
  return plan;
}

ExecResult run(const Program& program, const std::vector<Value>& inputs) {
  const ArgPlan plan = computeArgPlan(program, signatureOf(inputs));
  ExecResult result;
  result.trace.reserve(program.length());

  std::array<Value, kMaxArity> argbuf;
  for (std::size_t k = 0; k < program.length(); ++k) {
    const StatementPlan& sp = plan[k];
    const FunctionInfo& info = functionInfo(program.at(k));
    for (std::size_t slot = 0; slot < sp.arity; ++slot) {
      const ArgSource& src = sp.args[slot];
      switch (src.kind) {
        case ArgSource::Kind::Statement:
          argbuf[slot] = result.trace[src.index];
          break;
        case ArgSource::Kind::Input:
          argbuf[slot] = inputs[src.index];
          break;
        case ArgSource::Kind::Default:
          argbuf[slot] = Value::defaultFor(info.argTypes[slot]);
          break;
      }
    }
    result.trace.push_back(applyFunction(
        program.at(k), std::span<const Value>(argbuf.data(), sp.arity)));
  }
  result.output = program.empty() ? Value::defaultFor(Type::List)
                                  : result.trace.back();
  return result;
}

Value eval(const Program& program, const std::vector<Value>& inputs) {
  return run(program, inputs).output;
}

InputSignature signatureOf(const std::vector<Value>& inputs) {
  InputSignature sig;
  sig.reserve(inputs.size());
  for (const Value& v : inputs) sig.push_back(v.type());
  return sig;
}

}  // namespace netsyn::dsl
