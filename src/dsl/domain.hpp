// Domain: the bundle of choices that makes the NetSyn search engine
// DSL-generic (ROADMAP "as many scenarios as you can imagine").
//
// The pipeline — generate candidates, evolve them with a GA, grade them with
// a (learned) fitness function — never needed to know it was searching the
// paper's integer-list DSL. What it does need, per workload, is:
//
//   * a *vocabulary*: which FuncIds of the global function table
//     (functions.hpp) the search may use; mutation, neighborhood search,
//     enumeration baselines, and the NN probability map all range over it,
//   * *value generation*: the shapes of random inputs (int ranges, list
//     lengths, or a custom sampler — the str domain emits word-like text),
//   * *NN encoding hints*: the token-id range and truncation length the
//     fitness models embed values with,
//   * an *output-distance metric* for the hand-crafted edit fitness
//     (both shipped domains use token-level Levenshtein, which on
//     strings-as-char-lists *is* string edit distance),
//   * *rendering*: how values print (char lists display as "quoted text").
//
// A Domain is exactly that bundle. Everything else — Value, the ExecPlan
// compiler, the statement-major executor, DCE, budgets, islands, the service
// — is shared verbatim across domains. Per-function indexing (NN heads, FP
// probability maps, mutation roulette) uses *domain-local* indices
// 0..vocabSize()-1; `localIndex`/`vocabulary` translate to and from global
// FuncIds. For the list domain local == global, which is what keeps the
// refactored engine bit-identical to the pre-domain code (pinned by
// test_domain_parity).
//
// Domains are immutable singletons registered in src/domains/ (one
// subdirectory per domain); `findDomain` resolves the `--domain` flag.
// APIs that accept a `const Domain*` treat nullptr as "the classic list
// domain" so every pre-domain call site keeps working unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dsl/functions.hpp"
#include "dsl/generator.hpp"
#include "dsl/value.hpp"

namespace netsyn::dsl {

struct Domain {
  std::string name;     ///< registry key, e.g. "list", "str"
  std::string summary;  ///< one-line description for --help / explorers

  /// Global FuncIds this domain searches over, ascending. Dense domain-local
  /// indices are positions in this vector.
  std::vector<FuncId> vocabulary;

  /// Default random-generation knobs (value ranges, list lengths, input
  /// shapes). makeGeneratorConfig() stamps the back-pointer.
  GeneratorConfig generatorDefaults;

  // ---- NN encoding hints (consumed by fitness::EncoderConfig) ----
  std::int32_t tokenVmax = 64;     ///< token ids cover [-vmax, vmax)
  std::size_t maxValueTokens = 10; ///< per-value truncation length

  /// Render list values as quoted text (char codes) instead of [a, b, c].
  bool textual = false;

  /// Custom list-value sampler (nullptr = uniform elements in the config's
  /// [minValue, maxValue], the list domain's behaviour). The str domain
  /// plugs in a word-shaped text sampler here.
  Value (*sampleListValue)(const GeneratorConfig&, util::Rng&) = nullptr;

  /// Output distance for the hand-crafted edit fitness (nullptr = the
  /// shared token-level Levenshtein in fitness/edit.cpp).
  std::size_t (*editDistance)(const Value&, const Value&) = nullptr;

  // ---- derived tables (filled by finalize()) ----
  /// Global FuncId -> domain-local index; -1 when the function is outside
  /// the vocabulary. Size kTotalFunctions.
  std::vector<std::int32_t> localOf;
  std::vector<FuncId> intReturning;   ///< vocabulary subset returning Int
  std::vector<FuncId> listReturning;  ///< vocabulary subset returning List

  std::size_t vocabSize() const { return vocabulary.size(); }
  bool contains(FuncId id) const { return localOf[id] >= 0; }
  /// Precondition: contains(id).
  std::size_t localIndex(FuncId id) const {
    return static_cast<std::size_t>(localOf[id]);
  }
  /// Vocabulary functions whose return type is `t` (ascending FuncId; equals
  /// functionsReturning(t) for the list domain).
  const std::vector<FuncId>& returning(Type t) const {
    return t == Type::Int ? intReturning : listReturning;
  }

  /// generatorDefaults with `domain` pointing back at this Domain — what a
  /// Generator / harness config should be seeded with.
  GeneratorConfig makeGeneratorConfig() const;

  /// Builds localOf / intReturning / listReturning from `vocabulary`.
  /// Called once at registration; vocabulary must be non-empty, ascending,
  /// and in-range.
  void finalize();
};

/// The paper's integer/list DSL (Appendix A): FuncIds 0..kNumFunctions-1.
const Domain& listDomain();

/// The string-manipulation DSL (strings as char-code lists).
const Domain& strDomain();

/// Registered domains in registration order (list first).
const std::vector<const Domain*>& allDomains();

/// Case-sensitive lookup by name; nullptr when unknown.
const Domain* findDomain(std::string_view name);

/// "list, str" — for error messages listing the valid --domain values.
std::string knownDomainNames();

/// `domain` or the list domain when null — the nullptr convention every
/// Domain-pointer API follows.
inline const Domain& resolveDomain(const Domain* domain) {
  return domain ? *domain : listDomain();
}

/// Domain-aware display: textual domains print list values as quoted
/// strings (non-printable codes escape as \xNN), everything else via
/// Value::toString().
std::string renderValue(const Domain& domain, const Value& v);

}  // namespace netsyn::dsl
