// The global function table: the 41 functions of NetSyn's list DSL (paper
// Appendix A) followed by the string-manipulation ops of the "str" domain.
//
// Functions are identified by a dense 0-based `FuncId`; `paperNumber()` maps
// to the 1-based numbering used in the paper's Figure 6 and appendix (0 for
// ops outside the paper's Sigma). Each function has one of the signature
// shapes below — string ops reuse them with strings-as-char-lists:
//   [int] -> int        (HEAD, LAST, MINIMUM, ..., STR.LEN, STR.WORDS)
//   [int] -> [int]      (REVERSE, SORT, MAP x10, ..., STR.UPPER, STR.TRIM)
//   int,[int] -> [int]  (TAKE, DROP, DELETE, INSERT, STR.TAKE, STR.WORD)
//   [int],[int] -> [int] (ZIPWITH x5, STR.CONCAT)
//   int,[int] -> int    (ACCESS, SEARCH, STR.CHARAT)
// All functions are total: out-of-range accesses return defaults and
// arithmetic saturates (see value.hpp), so any function sequence is a valid
// program.
//
// The table is the *union* vocabulary; which functions a search may actually
// use is decided by the dsl::Domain (domain.hpp) it runs under. Ids never
// shift: 0..kNumFunctions-1 are the paper's list DSL, the str ops follow.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dsl/value.hpp"

namespace netsyn::dsl {

/// Dense function identifier, 0 .. kTotalFunctions-1.
using FuncId = std::uint8_t;

/// Size of the paper's Sigma_DSL: the list DSL has exactly 41 functions,
/// occupying FuncIds 0..40 of the table.
inline constexpr std::size_t kNumFunctions = 41;

/// Number of string-manipulation ops (FuncIds kNumFunctions..).
inline constexpr std::size_t kNumStrFunctions = 20;

/// Total size of the function table across all registered domains.
inline constexpr std::size_t kTotalFunctions =
    kNumFunctions + kNumStrFunctions;

/// Maximum arity of any DSL function.
inline constexpr std::size_t kMaxArity = 2;

/// Static description of one DSL function.
struct FunctionInfo {
  const char* name;          ///< e.g. "MAP(*2)"
  std::uint8_t paperNumber;  ///< 1-based id used in the paper (Figure 6)
  std::uint8_t arity;        ///< 1 or 2
  std::array<Type, kMaxArity> argTypes;  ///< argTypes[0..arity-1] are valid
  Type returnType;
};

/// Metadata for `id`. Precondition: id < kTotalFunctions.
const FunctionInfo& functionInfo(FuncId id);

/// Applies function `id` to `args` (args.size() == arity, types matching the
/// signature). Total: never throws for well-typed arguments.
Value applyFunction(FuncId id, std::span<const Value> args);

/// Allocation-free variant: applies function `id` to the pointed-to
/// arguments, writing the result into `out` and reusing out's retained list
/// buffer (see Value::makeList). `out` must not alias any argument — the
/// interpreter guarantees this because a statement can only read strictly
/// earlier trace slots and program inputs. Semantically identical to
/// applyFunction (pinned by tests).
void applyFunctionInto(FuncId id, std::span<const Value* const> args,
                       Value& out);

/// applyFunctionInto minus the argument validation: the caller guarantees
/// args[0..arity-1] are non-null and exactly match the signature. A compiled
/// ExecPlan is such a guarantee — the plan's sources were resolved from the
/// same type table — so the executor skips the per-statement re-checks.
/// Debug builds still assert.
void applyFunctionIntoUnchecked(FuncId id, const Value* const* args,
                                Value& out);

/// Resolved in-place body of one function, for plan compilers: exactly one
/// pointer matching the signature shape is non-null. Statement execution
/// binds these at compile time and calls the body directly, skipping the
/// per-statement dispatch-table lookup.
struct FunctionBody {
  void (*unary)(const std::vector<std::int32_t>&, Value&) = nullptr;
  void (*intList)(std::int32_t, const std::vector<std::int32_t>&,
                  Value&) = nullptr;
  void (*listList)(const std::vector<std::int32_t>&,
                   const std::vector<std::int32_t>&, Value&) = nullptr;
};

/// Body pointers for `id`. Precondition: id < kTotalFunctions.
FunctionBody functionBody(FuncId id);

struct SoATrace;

/// Lane-parallel function body: applies one function to every lane of a
/// SoATrace at once, reading the resolved argument slots (arg1 is ignored
/// for unary shapes) and writing the output slot. List producers append
/// densely to the trace arena (lanes.hpp documents the protocol). Kernels
/// exist for the whole list DSL; elementwise families (MAP, ZIPWITH) run
/// through the SIMD block primitives of simd.hpp.
using LaneKernel = void (*)(SoATrace&, std::uint32_t arg0, std::uint32_t arg1,
                            std::uint32_t out);

/// Lane kernel for `id`, or nullptr when the function has none (str-domain
/// ops): the lane executor then falls back to a per-lane scalar loop over
/// the ordinary body, so every function works under the SoA path.
/// Precondition: id < kTotalFunctions.
LaneKernel functionLaneKernel(FuncId id);

/// Lookup by display name (exact match, e.g. "FILTER(>0)"); nullopt when the
/// name is unknown. Used by the program parser.
std::optional<FuncId> functionByName(const std::string& name);

/// All *list-DSL* FuncIds (the paper's Sigma, ids < kNumFunctions) whose
/// return type is `t`. Domain-scoped generation goes through
/// Domain::returning (domain.hpp) instead, which restricts to the domain's
/// vocabulary; this helper keeps the paper-Sigma semantics its existing
/// callers rely on.
std::vector<FuncId> functionsReturning(Type t);

/// True if the function's return type is Int. The paper observes that these
/// "singleton producing" functions are the hardest to synthesize (Figure 6).
bool returnsInt(FuncId id);

}  // namespace netsyn::dsl
