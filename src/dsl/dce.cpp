#include "dsl/dce.hpp"

namespace netsyn::dsl {

std::vector<bool> liveMask(const Program& program, const InputSignature& sig) {
  const std::size_t n = program.length();
  std::vector<bool> live(n, false);
  if (n == 0) return live;

  const ArgPlan plan = computeArgPlan(program, sig);
  live[n - 1] = true;  // the final statement produces the program output
  // Walk backwards: a statement is live iff some live consumer reads it.
  // Consumers appear only after producers, so one backward pass suffices.
  for (std::size_t k = n; k-- > 0;) {
    if (!live[k]) continue;
    for (std::size_t slot = 0; slot < plan[k].arity; ++slot) {
      const ArgSource& src = plan[k].args[slot];
      if (src.kind == ArgSource::Kind::Statement) live[src.index] = true;
    }
  }
  return live;
}

std::size_t effectiveLength(const Program& program,
                            const InputSignature& sig) {
  const auto live = liveMask(program, sig);
  std::size_t n = 0;
  for (bool b : live) n += b ? 1 : 0;
  return n;
}

bool isFullyLive(const Program& program, const InputSignature& sig) {
  const auto live = liveMask(program, sig);
  for (bool b : live)
    if (!b) return false;
  return true;
}

Program eliminateDeadCode(const Program& program, const InputSignature& sig) {
  const auto live = liveMask(program, sig);
  std::vector<FuncId> kept;
  kept.reserve(program.length());
  for (std::size_t k = 0; k < program.length(); ++k)
    if (live[k]) kept.push_back(program.at(k));
  return Program(std::move(kept));
}

}  // namespace netsyn::dsl
