// Values of NetSyn's list DSL.
//
// The DSL (paper Appendix A) has exactly two data types: integers and lists
// of integers. All arithmetic saturates to 32-bit bounds so every DSL
// function is total: programs are valid by construction and can never trap,
// which is the property the paper relies on to avoid pruning/sandboxing in
// the genetic algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace netsyn::dsl {

/// Data types of the DSL.
enum class Type : std::uint8_t { Int, List };

/// Name of a type ("int" / "[int]") for diagnostics and program printing.
std::string typeName(Type t);

/// Saturating cast of a 64-bit intermediate into the DSL's 32-bit domain.
/// MAP(^2), SCANL1(*), ZIPWITH(*) etc. can overflow 32 bits; saturation keeps
/// every function total and deterministic.
std::int32_t saturate(std::int64_t v);

/// A DSL value: an integer or a list of integers.
class Value {
 public:
  /// Default value of a missing integer argument (paper: 0).
  Value() : data_(std::int32_t{0}) {}
  Value(std::int32_t v) : data_(v) {}                       // NOLINT implicit
  Value(std::vector<std::int32_t> v) : data_(std::move(v)) {}  // NOLINT

  /// Default value for the given type: 0 or the empty list.
  static Value defaultFor(Type t);

  Type type() const {
    return std::holds_alternative<std::int32_t>(data_) ? Type::Int
                                                       : Type::List;
  }
  bool isInt() const { return type() == Type::Int; }
  bool isList() const { return type() == Type::List; }

  /// Accessors; calling the wrong one throws std::bad_variant_access, which
  /// indicates an internal bug (the interpreter always matches types).
  std::int32_t asInt() const { return std::get<std::int32_t>(data_); }
  const std::vector<std::int32_t>& asList() const {
    return std::get<std::vector<std::int32_t>>(data_);
  }

  bool operator==(const Value& other) const = default;

  /// "7" or "[1, -2, 3]".
  std::string toString() const;

 private:
  std::variant<std::int32_t, std::vector<std::int32_t>> data_;
};

}  // namespace netsyn::dsl
