// Values of NetSyn's list DSL.
//
// The DSL (paper Appendix A) has exactly two data types: integers and lists
// of integers. All arithmetic saturates to 32-bit bounds so every DSL
// function is total: programs are valid by construction and can never trap,
// which is the property the paper relies on to avoid pruning/sandboxing in
// the genetic algorithm.
//
// Representation: a type tag plus both payloads, instead of a variant. A
// Value that once held a list keeps its heap buffer alive even while holding
// an int, so the interpreter's pooled trace slots stop allocating after
// warm-up: setInt()/makeList() retarget the slot without freeing, and
// copy-assignment refills the retained buffer in place. This is what makes
// candidate execution allocation-free in the GA's steady state.
#pragma once

#include <cstdint>
#include <string>
#include <variant>  // std::bad_variant_access, kept for accessor errors
#include <vector>

namespace netsyn::dsl {

/// Data types of the DSL.
enum class Type : std::uint8_t { Int, List };

/// Name of a type ("int" / "[int]") for diagnostics and program printing.
std::string typeName(Type t);

/// Saturating cast of a 64-bit intermediate into the DSL's 32-bit domain.
/// MAP(^2), SCANL1(*), ZIPWITH(*) etc. can overflow 32 bits; saturation keeps
/// every function total and deterministic. Inline (it runs once per produced
/// list element) so the per-element loops clamp in-register and vectorize.
constexpr std::int32_t saturate(std::int64_t v) {
  constexpr std::int64_t lo = INT32_MIN;
  constexpr std::int64_t hi = INT32_MAX;
  return static_cast<std::int32_t>(v < lo ? lo : (v > hi ? hi : v));
}

/// A DSL value: an integer or a list of integers.
class Value {
 public:
  /// Default value of a missing integer argument (paper: 0).
  Value() = default;
  Value(std::int32_t v) : int_(v) {}  // NOLINT implicit
  Value(std::vector<std::int32_t> v)  // NOLINT implicit
      : type_(Type::List), list_(std::move(v)) {}

  /// Copies refill the retained list buffer instead of reallocating, and an
  /// int-typed source never drags its dead list storage along.
  Value(const Value& other) : type_(other.type_), int_(other.int_) {
    if (type_ == Type::List) list_ = other.list_;
  }
  Value& operator=(const Value& other) {
    if (this == &other) return *this;  // assign() from own range is UB
    type_ = other.type_;
    if (type_ == Type::Int) {
      int_ = other.int_;
    } else {
      list_.assign(other.list_.begin(), other.list_.end());
    }
    return *this;
  }
  Value(Value&&) noexcept = default;
  Value& operator=(Value&&) noexcept = default;

  /// Default value for the given type: 0 or the empty list.
  static Value defaultFor(Type t);

  Type type() const { return type_; }
  bool isInt() const { return type_ == Type::Int; }
  bool isList() const { return type_ == Type::List; }

  /// Accessors; calling the wrong one throws std::bad_variant_access, which
  /// indicates an internal bug (the interpreter always matches types).
  std::int32_t asInt() const {
    if (type_ != Type::Int) throw std::bad_variant_access{};
    return int_;
  }
  const std::vector<std::int32_t>& asList() const {
    if (type_ != Type::List) throw std::bad_variant_access{};
    return list_;
  }

  /// Unchecked accessors for the executor's hot path, where the compiled
  /// plan has already established the type. Reading the wrong one returns
  /// dead storage but is memory-safe (both payloads always exist).
  std::int32_t intUnchecked() const { return int_; }
  const std::vector<std::int32_t>& listUnchecked() const { return list_; }

  /// In-place mutation for the zero-allocation execution path. setInt keeps
  /// the list buffer alive; makeList retargets the slot to its retained
  /// buffer *without clearing it* — callers overwrite the contents.
  void setInt(std::int32_t v) {
    type_ = Type::Int;
    int_ = v;
  }
  std::vector<std::int32_t>& makeList() {
    type_ = Type::List;
    return list_;
  }

  bool operator==(const Value& other) const {
    if (type_ != other.type_) return false;
    return type_ == Type::Int ? int_ == other.int_ : list_ == other.list_;
  }

  /// "7" or "[1, -2, 3]".
  std::string toString() const;

 private:
  Type type_ = Type::Int;
  std::int32_t int_ = 0;
  std::vector<std::int32_t> list_;  ///< live iff type_ == List; buffer retained
};

}  // namespace netsyn::dsl
