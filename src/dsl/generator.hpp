// Random generation of programs, inputs, and specifications.
//
// Mirrors the paper's experimental setup (§5): training and test programs
// are random, fully-live (no dead code) function sequences; each program is
// paired with m input-output examples obtained by executing it on random
// inputs. "Singleton" programs end in an int-returning function, "list"
// programs end in a list-returning one; the paper's test workload is half of
// each.
#pragma once

#include <cstdint>
#include <optional>

#include "dsl/dce.hpp"
#include "dsl/program.hpp"
#include "dsl/spec.hpp"
#include "util/rng.hpp"

namespace netsyn::dsl {

struct Domain;  // domain.hpp — vocabulary + value shapes of one DSL

/// Knobs for random generation. Defaults follow DeepCoder-style conventions
/// scaled to this repo's CPU-only setting (documented in DESIGN.md §5).
struct GeneratorConfig {
  int minListLength = 4;     ///< random input list length range
  int maxListLength = 10;
  std::int32_t minValue = -64;  ///< element / int-input range
  std::int32_t maxValue = 64;
  double intInputProbability = 0.5;  ///< P(program also takes an int input)
  int maxAttempts = 1000;  ///< rejection-sampling budget per artifact
  /// Separate range for Int *inputs* when useIntRange is set (the str domain
  /// draws list elements as char codes but int inputs as small counts /
  /// indices). Off by default: ints share [minValue, maxValue], the list
  /// domain's classic behaviour.
  bool useIntRange = false;
  std::int32_t intMinValue = 0;
  std::int32_t intMaxValue = 0;
  /// Which DSL to generate for: vocabulary for function sampling plus value
  /// hooks. nullptr selects the classic list domain (bit-identical to the
  /// pre-domain generator; pinned by test_domain_parity).
  const Domain* domain = nullptr;
};

class Generator {
 public:
  explicit Generator(GeneratorConfig config = {}) : config_(config) {}
  /// Generator for `domain` with the domain's default knobs.
  explicit Generator(const Domain& domain);

  const GeneratorConfig& config() const { return config_; }
  /// The domain generated for (config().domain, null resolving to list).
  const Domain& domain() const;

  /// Random input signature: always a list first, optionally an int.
  InputSignature randomSignature(util::Rng& rng) const;

  /// Random value of the given type within the configured ranges.
  Value randomValue(Type t, util::Rng& rng) const;

  /// Random input tuple for `sig`.
  std::vector<Value> randomInputs(const InputSignature& sig,
                                  util::Rng& rng) const;

  /// Uniformly random program of exactly `length` functions with no dead
  /// code under `sig`. If `outputType` is given, the final function returns
  /// that type. Uses rejection sampling with per-statement repair; returns
  /// nullopt only if `maxAttempts` is exhausted (practically unreachable for
  /// lengths <= 15).
  std::optional<Program> randomProgram(std::size_t length,
                                       const InputSignature& sig,
                                       util::Rng& rng,
                                       std::optional<Type> outputType = {})
      const;

  /// Builds a spec of `m` examples by running `program` on random inputs of
  /// signature `sig`. Rejects degenerate specs where every output equals the
  /// type default (those make synthesis trivially easy and teach the NN
  /// nothing); returns nullopt if no acceptable spec is found within the
  /// attempt budget.
  std::optional<Spec> makeSpec(const Program& program,
                               const InputSignature& sig, std::size_t m,
                               util::Rng& rng) const;

  /// One-stop test-case generation: a fully-live random program of `length`
  /// plus an m-example spec. `singleton` selects an int-returning final
  /// function (the paper's "singleton programs") versus list-returning.
  struct TestCase {
    Program program;
    InputSignature signature;
    Spec spec;
  };
  std::optional<TestCase> randomTestCase(std::size_t length, std::size_t m,
                                         bool singleton,
                                         util::Rng& rng) const;

 private:
  GeneratorConfig config_;
};

}  // namespace netsyn::dsl
