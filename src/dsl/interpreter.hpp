// Interpreter for NetSyn's list DSL with type-driven argument resolution and
// execution-trace capture.
//
// The DSL has no named variables (paper Appendix A): when a function needs an
// argument of some type, the runtime searches backwards through the outputs
// of previously executed statements for the most recent value of that type;
// if none exists it searches the program's own inputs (most recent first);
// if none exists there either, it supplies the default value (0 / []).
//
// Because every function's output type is fixed by its signature, this
// resolution depends only on *types*, never on runtime values. We exploit
// that to precompute a static `ArgPlan` per program, which (a) makes
// execution allocation-light, and (b) makes dead-code analysis exact
// (see dce.hpp).
//
// Two-argument functions fill their argument slots with *distinct* most
// recent producers when possible (ZIPWITH combines the two most recent
// lists); when only one producer of the required type exists anywhere, it is
// reused for both slots (ZIPWITH of a list with itself) rather than silently
// degrading to the empty default. The paper is silent on this corner; reuse
// keeps single-list programs semantically rich and is the convention
// DeepCoder's DSL follows.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "dsl/lanes.hpp"
#include "dsl/program.hpp"
#include "dsl/value.hpp"

namespace netsyn::dsl {

/// Where one argument of one statement comes from.
struct ArgSource {
  enum class Kind : std::uint8_t {
    Statement,  ///< output of statement `index`
    Input,      ///< program input `index`
    Default,    ///< type default (0 / [])
  };
  Kind kind = Kind::Default;
  std::uint16_t index = 0;

  bool operator==(const ArgSource&) const = default;
};

/// Resolved argument sources for one statement.
struct StatementPlan {
  std::uint8_t arity = 0;
  std::array<ArgSource, kMaxArity> args{};
};

/// Per-statement argument plan for a whole program.
using ArgPlan = std::vector<StatementPlan>;

/// The default list value, shared so empty-program results need no storage.
inline const Value kEmptyListValue{std::vector<std::int32_t>{}};

/// Result of executing a program on one input tuple.
struct ExecResult {
  std::vector<Value> trace;  ///< t_k = output of statement k (paper §4.2.1)

  /// Output of the final statement — by definition the last trace entry, so
  /// it is a view, not a copy (an empty program yields the default list).
  const Value& output() const {
    return trace.empty() ? kEmptyListValue : trace.back();
  }
};

/// Computes the static argument plan of `program` under `inputs` types.
/// O(L * (L + |inputs|)); resolution rules documented above.
ArgPlan computeArgPlan(const Program& program, const InputSignature& inputs);

/// One compiled statement: the function body (resolved to a direct pointer,
/// tagged by signature shape), its arity, and where each argument comes
/// from. Everything execution needs, resolved once.
struct ExecStep {
  /// Signature shape of `body` — selects which pointer to call.
  enum class Shape : std::uint8_t { Unary, IntList, ListList };

  FuncId fn = 0;
  std::uint8_t arity = 0;
  Shape shape = Shape::Unary;
  /// Output type of `fn` — the SoA scatter path needs it without a
  /// functionInfo lookup per statement per group.
  Type ret = Type::List;
  std::array<ArgSource, kMaxArity> args{};
  FunctionBody body{};
  /// Lane-group body (nullptr for functions without one — the lane executor
  /// then runs the scalar body per lane). Resolved at compile time like
  /// `body` so the per-statement dispatch is one pointer test.
  LaneKernel lane = nullptr;
};

/// A program compiled against one input signature. Depends only on
/// (function sequence, input types), so it is safe to cache and share across
/// every concrete input tuple with the same signature — which is exactly how
/// the spec evaluator runs one gene over all m examples.
struct ExecPlan {
  std::vector<ExecStep> steps;
};

/// Compiles `program` against `inputs` types (computeArgPlan + function
/// metadata, fused into the step array the executor walks).
ExecPlan compilePlan(const Program& program, const InputSignature& inputs);

/// In-place variant reusing `out`'s step storage (the Executor's slot
/// recompile path).
void compilePlanInto(const Program& program, const InputSignature& inputs,
                     ExecPlan& out);

/// Executes `plan` on `inputs`, writing into `out` and reusing its storage:
/// the trace is resized to the plan length and every slot is overwritten in
/// place, so list buffers retained by previous executions are refilled
/// without allocating. Results are identical to run() (pinned by tests).
void executePlan(const ExecPlan& plan, const std::vector<Value>& inputs,
                 ExecResult& out);

/// Executes `plan` on `count` input tuples at once, statement-major:
/// every step's body pointer and argument recipe is resolved once and then
/// applied to all input tuples back to back, which keeps the body code and
/// its indirect-branch target hot across the whole batch. Equivalent to
/// executePlan(plan, *inputSets[j], outs[j]) for each j — this is how the
/// evaluator runs one gene over a spec's m examples.
void executePlanMulti(const ExecPlan& plan,
                      const std::vector<Value>* const* inputSets,
                      std::size_t count, ExecResult* outs);

/// Reusable execution engine: a plan cache keyed by (program, signature)
/// fingerprint plus pooled result storage. One Executor serves one search
/// thread (it is not thread-safe); the GA's evaluator keeps one for the
/// whole synthesis run so plans for elites, duplicates, and re-examined
/// genes are compiled once instead of once per example.
///
/// The cache is direct-mapped (one probe into a fixed power-of-two slot
/// array, conflicting keys overwrite): a compile is ~100ns, so eviction is
/// cheaper than the node allocations and cold bucket walks of a growing
/// hash map — this keeps the cache O(1) in both time and memory across a
/// budget-3M search. A slot recompile reuses the evicted plan's step
/// storage, so the steady state allocates nothing. Hits are verified
/// against the slot's stored (program, signature) — a byte compare of the
/// function sequence — so a 64-bit fingerprint collision can only cause a
/// spurious recompile, never execution of the wrong plan.
class Executor {
 public:
  /// Cached compiled plan for (program, signature); compiles on miss. The
  /// returned reference is valid until the next planFor() call (which may
  /// overwrite the slot).
  const ExecPlan& planFor(const Program& program, const InputSignature& sig);

  /// run() with plan caching and storage reuse: executes `program` on
  /// `inputs` into `out`, overwriting out's trace slots in place.
  void runInto(const Program& program, const std::vector<Value>& inputs,
               ExecResult& out);

  /// Output-only variant reusing one internal result slot; the reference is
  /// valid until the next Executor call. For equivalence checks.
  const Value& evalInto(const Program& program,
                        const std::vector<Value>& inputs);

  /// Executes `plan` over `count` examples through the configured backend:
  /// the SIMD lane path (executePlanMultiLanes, default) or the scalar
  /// statement-major path. Both produce identical ExecResult traces — the
  /// lane path is pinned against the scalar oracle by the differential fuzz
  /// suite — so callers switch freely via setLaneExecution.
  void executeMulti(const ExecPlan& plan,
                    const std::vector<Value>* const* inputSets,
                    std::size_t count, ExecResult* outs) {
    if (lanes_)
      executePlanMultiLanes(
          plan, inputSets, count, outs, laneScratch_,
          /*reuseIngest=*/inputSets == pinnedSets_ && count == pinnedCount_);
    else
      executePlanMulti(plan, inputSets, count, outs);
  }

  /// Output-only executeMulti: fills `outs[j]` (refilled in place) with the
  /// final statement's output for each example, without materializing
  /// traces. On the lane backend this skips the intermediate-trace scatter
  /// — the dominant cost of the full-trace path — so equivalence-only
  /// consumers (SpecEvaluator::check) run several times faster than
  /// executing per example; the scalar backend loops executePlan into an
  /// internal scratch as the differential oracle.
  void executeMultiOutputs(const ExecPlan& plan,
                           const std::vector<Value>* const* inputSets,
                           std::size_t count, Value* outs) {
    if (lanes_) {
      executePlanMultiLanesOutputs(
          plan, inputSets, count, outs, laneScratch_,
          /*reuseIngest=*/inputSets == pinnedSets_ && count == pinnedCount_);
    } else {
      for (std::size_t j = 0; j < count; ++j) {
        executePlan(plan, *inputSets[j], scratch_);
        outs[j] = scratch_.output();
      }
    }
  }

  /// Lane-view executeMulti: executes `plan` with NO scatter and binds
  /// `view` over the internal SoA scratch, so trace consumers (the NN
  /// fitness encoders) read lane blocks in place. Returns false — without
  /// executing — when the lane backend is off or `count` doesn't fit one
  /// lane group; the caller then falls back to executeMulti. The view is
  /// valid until the Executor's next lane execution.
  bool executeMultiView(const ExecPlan& plan,
                        const std::vector<Value>* const* inputSets,
                        std::size_t count, LaneTraceView& view) {
    if (!lanes_ || count == 0 || count > SoATrace::kMaxLanes) return false;
    executePlanMultiLanesView(
        plan, inputSets, count, view, laneScratch_,
        /*reuseIngest=*/inputSets == pinnedSets_ && count == pinnedCount_);
    return true;
  }

  /// Declares `sets[0..count)` stable: the array and every pointed-to input
  /// tuple will not change (contents included) until re-pinned or cleared.
  /// Lets the lane executor ingest the example inputs into its SoA store
  /// once per spec instead of once per candidate — the dominant fixed cost
  /// at the paper's m=5..10 examples. SpecEvaluator pins its spec on
  /// construction; pin manually only if you own the array's lifetime.
  /// Unpinned executeMulti calls stay correct and simply re-ingest.
  void pinExampleInputs(const std::vector<Value>* const* sets,
                        std::size_t count) {
    pinnedSets_ = sets;
    pinnedCount_ = count;
    // Drop any trace-level pin: a new pin means new inputs, and a recycled
    // allocation could otherwise alias the previous array's address and
    // inherit its stale ingest.
    laneScratch_.pinKey = nullptr;
    laneScratch_.pinnedUsed = 0;
  }
  void clearPinnedInputs() {
    pinnedSets_ = nullptr;
    pinnedCount_ = 0;
    laneScratch_.pinKey = nullptr;
    laneScratch_.pinnedUsed = 0;
  }

  /// Selects the executeMulti backend: true (default) = SoA lane executor,
  /// false = scalar statement-major loop (the differential-fuzz oracle).
  void setLaneExecution(bool enabled) { lanes_ = enabled; }
  bool laneExecution() const { return lanes_; }

  /// Compiled SIMD backend of the lane kernels ("avx2" or "scalar"), for
  /// bench records and service stats.
  static const char* backendName();

  std::size_t planCacheSize() const { return occupied_; }
  std::size_t planCompiles() const { return compiles_; }
  /// Total planFor/runInto plan lookups. lookups - compiles = cache hits;
  /// the synthesis service resets both counters at the start of each job
  /// (resetCounters) and reads them raw afterwards to report how warm the
  /// cross-request plan cache ran.
  std::size_t planLookups() const { return lookups_; }
  /// Zeroes planCompiles/planLookups without touching the plan cache
  /// itself: per-job deltas stay exact even across executor reconfiguration
  /// (e.g. a backend switch between jobs), where carrying before/after
  /// snapshots would go stale.
  void resetCounters() {
    compiles_ = 0;
    lookups_ = 0;
  }
  void clearPlanCache();

 private:
  /// 64-bit fingerprint of (program, signature). FNV-1a, same family as
  /// Program::hash; collisions would only ever alias two plans, and plans
  /// are determined by far fewer than 2^32 distinct (sequence, signature)
  /// pairs in any real run.
  static std::uint64_t keyOf(const Program& program,
                             const std::vector<Value>& inputs);
  static std::uint64_t keyOf(const Program& program,
                             const InputSignature& sig);

  const ExecPlan& planForKey(std::uint64_t key, const Program& program,
                             const InputSignature& sig);

  static constexpr std::size_t kSlots = 1u << 12;  ///< direct-mapped slots

  struct Slot {
    std::uint64_t key = 0;
    bool used = false;
    std::vector<FuncId> functions;  ///< exact identity of the cached plan
    InputSignature sig;
    ExecPlan plan;
  };
  std::vector<Slot> slots_ = std::vector<Slot>(kSlots);
  ExecResult scratch_;  ///< backing store for evalInto
  SoATrace laneScratch_;  ///< lane-group storage for executeMulti
  bool lanes_ = true;     ///< executeMulti backend (see setLaneExecution)
  const std::vector<Value>* const* pinnedSets_ = nullptr;  ///< see pinExampleInputs
  std::size_t pinnedCount_ = 0;
  std::size_t compiles_ = 0;
  std::size_t lookups_ = 0;
  std::size_t occupied_ = 0;
  InputSignature sigScratch_;  ///< reused by runInto/evalInto cache misses
};

// LaneTraceView members that need ExecStep (lanes.hpp only forward-declares
// ExecPlan); defined here so every view consumer gets them inline.

inline Type LaneTraceView::stepType(std::size_t k) const {
  return plan->steps[k].ret;
}

inline bool LaneTraceView::outputEquals(std::size_t lane,
                                        const Value& expected) const {
  if (steps == 0) return expected.isList() && expected.asList().empty();
  const std::size_t last = steps - 1;
  if (stepType(last) == Type::Int)
    return expected.isInt() && expected.asInt() == intAt(last, lane);
  if (!expected.isList()) return false;
  std::size_t len = 0;
  const std::int32_t* seg = listAt(last, lane, &len);
  const auto& xs = expected.asList();
  return xs.size() == len &&
         std::equal(seg, seg + len, xs.begin());
}

/// Runs `program` on `inputs`, capturing the full execution trace.
/// Total: never throws for any function sequence (valid by construction).
/// An empty program yields the default list value and an empty trace.
/// Convenience wrapper over compilePlan + executePlan; hot paths use an
/// Executor instead so the plan is compiled once, not per call.
ExecResult run(const Program& program, const std::vector<Value>& inputs);

/// Runs `program` and returns only its final output (trace discarded).
Value eval(const Program& program, const std::vector<Value>& inputs);

/// Extracts the input signature (types) of a concrete input tuple.
InputSignature signatureOf(const std::vector<Value>& inputs);

}  // namespace netsyn::dsl
