// Interpreter for NetSyn's list DSL with type-driven argument resolution and
// execution-trace capture.
//
// The DSL has no named variables (paper Appendix A): when a function needs an
// argument of some type, the runtime searches backwards through the outputs
// of previously executed statements for the most recent value of that type;
// if none exists it searches the program's own inputs (most recent first);
// if none exists there either, it supplies the default value (0 / []).
//
// Because every function's output type is fixed by its signature, this
// resolution depends only on *types*, never on runtime values. We exploit
// that to precompute a static `ArgPlan` per program, which (a) makes
// execution allocation-light, and (b) makes dead-code analysis exact
// (see dce.hpp).
//
// Two-argument functions fill their argument slots with *distinct* most
// recent producers when possible (ZIPWITH combines the two most recent
// lists); when only one producer of the required type exists anywhere, it is
// reused for both slots (ZIPWITH of a list with itself) rather than silently
// degrading to the empty default. The paper is silent on this corner; reuse
// keeps single-list programs semantically rich and is the convention
// DeepCoder's DSL follows.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dsl/program.hpp"
#include "dsl/value.hpp"

namespace netsyn::dsl {

/// Where one argument of one statement comes from.
struct ArgSource {
  enum class Kind : std::uint8_t {
    Statement,  ///< output of statement `index`
    Input,      ///< program input `index`
    Default,    ///< type default (0 / [])
  };
  Kind kind = Kind::Default;
  std::uint16_t index = 0;

  bool operator==(const ArgSource&) const = default;
};

/// Resolved argument sources for one statement.
struct StatementPlan {
  std::uint8_t arity = 0;
  std::array<ArgSource, kMaxArity> args{};
};

/// Per-statement argument plan for a whole program.
using ArgPlan = std::vector<StatementPlan>;

/// Result of executing a program on one input tuple.
struct ExecResult {
  Value output;              ///< output of the final statement
  std::vector<Value> trace;  ///< t_k = output of statement k (paper §4.2.1)
};

/// Computes the static argument plan of `program` under `inputs` types.
/// O(L * (L + |inputs|)); resolution rules documented above.
ArgPlan computeArgPlan(const Program& program, const InputSignature& inputs);

/// Runs `program` on `inputs`, capturing the full execution trace.
/// Total: never throws for any function sequence (valid by construction).
/// An empty program yields the default list value and an empty trace.
ExecResult run(const Program& program, const std::vector<Value>& inputs);

/// Runs `program` and returns only its final output (trace discarded).
Value eval(const Program& program, const std::vector<Value>& inputs);

/// Extracts the input signature (types) of a concrete input tuple.
InputSignature signatureOf(const std::vector<Value>& inputs);

}  // namespace netsyn::dsl
