// SIMD block kernels for the lane executor (lanes.hpp): elementwise
// saturating transforms over contiguous int32 blocks.
//
// The SoA trace store concatenates the per-example ("lane") lists of one
// statement into a single dense block, so the elementwise op families —
// MAP's ten lambdas and ZIPWITH's five combiners — can be applied to all
// examples of a spec in one vector loop, 8 int32 elements per AVX2 vector,
// with `saturate` clamping performed in-register instead of per scalar.
//
// Backend selection is compile-time:
//   - NETSYN_SIMD (CMake option, default ON) + __AVX2__  -> hand-written
//     AVX2 intrinsics ("avx2"), 8 int32 per vector.
//   - NETSYN_SIMD + __ARM_NEON (aarch64 or armv7-neon)   -> hand-written
//     NEON intrinsics ("neon"), 4 int32 per vector. NEON's saturating
//     int32 ops (vqadd/vqsub/vqneg/vqshl) compute exactly
//     clamp-of-true-result, so most kernels skip the widen/clamp dance the
//     AVX2 path needs; the multiplies widen through vmull_s32 + vqmovn_s64.
//   - otherwise -> the portable loops ("scalar"), written in the branchless
//     widen/clamp form the auto-vectorizer handles well.
//
// Every kernel is semantically identical to saturate(op(x)) per element —
// the scalar bodies in functions.cpp stay the oracle, and
// tests/test_fuzz_differential.cpp pins the backends bitwise-equal over 12k
// random programs. The arithmetic is integral, so there is no
// backend-dependent rounding: "avx2", "neon", and "scalar" agree exactly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dsl/value.hpp"

#if defined(NETSYN_SIMD) && defined(__AVX2__)
#define NETSYN_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(NETSYN_SIMD) && defined(__ARM_NEON)
#define NETSYN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace netsyn::dsl::simd {

/// int32 elements per vector on the compiled backend (8 for AVX2, 4 for
/// NEON). Kernel tails shorter than this run scalar; the lane executor's
/// correctness never depends on it (tests cover counts around every
/// multiple).
inline constexpr std::size_t kLaneWidth =
#if NETSYN_SIMD_NEON
    4;
#else
    8;
#endif

/// Compiled SIMD backend, for bench records and service stats: "avx2" or
/// "neon" when the intrinsic kernels are active, "scalar" for the portable
/// fallback.
inline const char* backendName() {
#if NETSYN_SIMD_AVX2
  return "avx2";
#elif NETSYN_SIMD_NEON
  return "neon";
#else
  return "scalar";
#endif
}

using I64 = std::int64_t;

#if NETSYN_SIMD_AVX2
namespace detail {

/// Sign-extends the low / high 4 int32 of `v` to 4 int64 lanes.
inline __m256i widenLo(__m256i v) {
  return _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
}
inline __m256i widenHi(__m256i v) {
  return _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
}

/// Packs the low dword of each 64-bit lane into 4 int32. Only correct when
/// the low dwords already hold the final bit patterns (the upper dwords are
/// discarded unexamined).
inline __m128i packLow(__m256i x) {
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(x, pick));
}

/// Clamps 4 int64 lanes into [INT32_MIN, INT32_MAX] — `saturate`
/// in-register — and packs the surviving low dwords into 4 int32.
inline __m128i clampPack(__m256i x) {
  const __m256i maxv = _mm256_set1_epi64x(INT32_MAX);
  const __m256i minv = _mm256_set1_epi64x(INT32_MIN);
  x = _mm256_blendv_epi8(x, maxv, _mm256_cmpgt_epi64(x, maxv));
  x = _mm256_blendv_epi8(x, minv, _mm256_cmpgt_epi64(minv, x));
  return packLow(x);
}

/// dst[i] = saturate(op64(widen(src[i]))) over the whole block. Op64 maps 4
/// sign-extended int64 lanes; ScalarOp is the exact per-element formula for
/// the tail. Both must compute the same mathematical function.
template <class Op64, class ScalarOp>
inline void mapWiden(const std::int32_t* src, std::int32_t* dst,
                     std::size_t n, Op64 op64, ScalarOp sop) {
  std::size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m128i lo = clampPack(op64(widenLo(v)));
    const __m128i hi = clampPack(op64(widenHi(v)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_set_m128i(hi, lo));
  }
  for (; i < n; ++i) dst[i] = saturate(sop(static_cast<I64>(src[i])));
}

/// Two-argument widened variant for the ZIPWITH combiners.
template <class Op64, class ScalarOp>
inline void zipWiden(const std::int32_t* a, const std::int32_t* b,
                     std::int32_t* dst, std::size_t n, Op64 op64,
                     ScalarOp sop) {
  std::size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m128i lo = clampPack(op64(widenLo(va), widenLo(vb)));
    const __m128i hi = clampPack(op64(widenHi(va), widenHi(vb)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_set_m128i(hi, lo));
  }
  for (; i < n; ++i)
    dst[i] = saturate(sop(static_cast<I64>(a[i]), static_cast<I64>(b[i])));
}

}  // namespace detail
#endif  // NETSYN_SIMD_AVX2

#if NETSYN_SIMD_NEON
namespace detail {

/// dst[i] = opVec(src[i]) vector-wide, scalar-formula tail. Unlike the AVX2
/// mapWiden there is no shared widen/clamp: each NEON kernel picks its own
/// saturating instruction, which must equal saturate(sop(widen(x))).
template <class OpVec, class ScalarOp>
inline void mapNeon(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n, OpVec opVec, ScalarOp sop) {
  std::size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth)
    vst1q_s32(dst + i, opVec(vld1q_s32(src + i)));
  for (; i < n; ++i) dst[i] = saturate(sop(static_cast<I64>(src[i])));
}

/// Two-argument variant for the ZIPWITH combiners.
template <class OpVec, class ScalarOp>
inline void zipNeon(const std::int32_t* a, const std::int32_t* b,
                    std::int32_t* dst, std::size_t n, OpVec opVec,
                    ScalarOp sop) {
  std::size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth)
    vst1q_s32(dst + i, opVec(vld1q_s32(a + i), vld1q_s32(b + i)));
  for (; i < n; ++i)
    dst[i] = saturate(sop(static_cast<I64>(a[i]), static_cast<I64>(b[i])));
}

/// 1 iff negative, as an int32 lane (logical shift of the sign bit) — the
/// round-toward-zero bias for the division kernels.
inline int32x4_t signBit(int32x4_t v) {
  return vreinterpretq_s32_u32(vshrq_n_u32(vreinterpretq_u32_s32(v), 31));
}

}  // namespace detail
#endif  // NETSYN_SIMD_NEON

// ---- MAP lambdas over one block ---------------------------------------------
// dst[i] = saturate(lambda(src[i])); src and dst must not overlap (the SoA
// arena appends statement outputs after their inputs, so they never do).

inline void mapAdd1(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
#if NETSYN_SIMD_AVX2
  const __m256i one = _mm256_set1_epi64x(1);
  detail::mapWiden(
      src, dst, n, [one](__m256i w) { return _mm256_add_epi64(w, one); },
      [](I64 v) { return v + 1; });
#elif NETSYN_SIMD_NEON
  // x+1 fits int33, so the saturating add IS clamp-of-true-sum.
  const int32x4_t one = vdupq_n_s32(1);
  detail::mapNeon(
      src, dst, n, [one](int32x4_t v) { return vqaddq_s32(v, one); },
      [](I64 v) { return v + 1; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(src[i]) + 1);
#endif
}

inline void mapSub1(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
#if NETSYN_SIMD_AVX2
  const __m256i one = _mm256_set1_epi64x(1);
  detail::mapWiden(
      src, dst, n, [one](__m256i w) { return _mm256_sub_epi64(w, one); },
      [](I64 v) { return v - 1; });
#elif NETSYN_SIMD_NEON
  const int32x4_t one = vdupq_n_s32(1);
  detail::mapNeon(
      src, dst, n, [one](int32x4_t v) { return vqsubq_s32(v, one); },
      [](I64 v) { return v - 1; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(src[i]) - 1);
#endif
}

inline void mapMul2(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
#if NETSYN_SIMD_AVX2
  detail::mapWiden(
      src, dst, n, [](__m256i w) { return _mm256_slli_epi64(w, 1); },
      [](I64 v) { return v * 2; });
#elif NETSYN_SIMD_NEON
  detail::mapNeon(
      src, dst, n, [](int32x4_t v) { return vqaddq_s32(v, v); },
      [](I64 v) { return v * 2; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(src[i]) * 2);
#endif
}

inline void mapMul3(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
#if NETSYN_SIMD_AVX2
  detail::mapWiden(
      src, dst, n,
      [](__m256i w) { return _mm256_add_epi64(_mm256_slli_epi64(w, 1), w); },
      [](I64 v) { return v * 3; });
#elif NETSYN_SIMD_NEON
  // sat(sat(2x) + x) == sat(3x): once 2x saturates, adding x (same sign)
  // stays pinned at the rail 3x would also hit; otherwise both sums are
  // exact in int33 and the saturating add clamps the true total.
  detail::mapNeon(
      src, dst, n,
      [](int32x4_t v) { return vqaddq_s32(vqaddq_s32(v, v), v); },
      [](I64 v) { return v * 3; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(src[i]) * 3);
#endif
}

inline void mapMul4(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
#if NETSYN_SIMD_AVX2
  detail::mapWiden(
      src, dst, n, [](__m256i w) { return _mm256_slli_epi64(w, 2); },
      [](I64 v) { return v * 4; });
#elif NETSYN_SIMD_NEON
  detail::mapNeon(
      src, dst, n, [](int32x4_t v) { return vqshlq_n_s32(v, 2); },
      [](I64 v) { return v * 4; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(src[i]) * 4);
#endif
}

inline void mapNeg(const std::int32_t* src, std::int32_t* dst,
                   std::size_t n) {
#if NETSYN_SIMD_AVX2
  const __m256i zero = _mm256_setzero_si256();
  detail::mapWiden(
      src, dst, n, [zero](__m256i w) { return _mm256_sub_epi64(zero, w); },
      [](I64 v) { return -v; });
#elif NETSYN_SIMD_NEON
  // vqneg maps INT32_MIN to INT32_MAX — exactly saturate(-(I64)x).
  detail::mapNeon(
      src, dst, n, [](int32x4_t v) { return vqnegq_s32(v); },
      [](I64 v) { return -v; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(-static_cast<I64>(src[i]));
#endif
}

inline void mapSquare(const std::int32_t* src, std::int32_t* dst,
                      std::size_t n) {
#if NETSYN_SIMD_AVX2
  // mul_epi32 multiplies the sign-extended low dword of each 64-bit lane —
  // exactly the widened original element — into an exact 64-bit square.
  detail::mapWiden(
      src, dst, n, [](__m256i w) { return _mm256_mul_epi32(w, w); },
      [](I64 v) { return v * v; });
#elif NETSYN_SIMD_NEON
  // vmull_s32 widens to an exact 64-bit square; vqmovn_s64 is the
  // saturating narrow — together saturate(x*x).
  detail::mapNeon(
      src, dst, n,
      [](int32x4_t v) {
        const int64x2_t lo = vmull_s32(vget_low_s32(v), vget_low_s32(v));
        const int64x2_t hi = vmull_s32(vget_high_s32(v), vget_high_s32(v));
        return vcombine_s32(vqmovn_s64(lo), vqmovn_s64(hi));
      },
      [](I64 v) { return v * v; });
#else
  for (std::size_t i = 0; i < n; ++i) {
    const I64 v = src[i];
    dst[i] = saturate(v * v);
  }
#endif
}

// Truncating division by 2 / 4 cannot leave the int32 range, so these run
// directly on 8 int32 lanes: add the sign-dependent bias (d-1 for negative
// dividends), then shift arithmetically — C's round-toward-zero exactly.
inline void mapDiv2(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
  std::size_t i = 0;
#if NETSYN_SIMD_AVX2
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i bias = _mm256_srli_epi32(v, 31);  // 1 iff negative
    const __m256i q = _mm256_srai_epi32(_mm256_add_epi32(v, bias), 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), q);
  }
#elif NETSYN_SIMD_NEON
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const int32x4_t v = vld1q_s32(src + i);
    vst1q_s32(dst + i, vshrq_n_s32(vaddq_s32(v, detail::signBit(v)), 1));
  }
#endif
  for (; i < n; ++i) dst[i] = src[i] / 2;
}

inline void mapDiv4(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
  std::size_t i = 0;
#if NETSYN_SIMD_AVX2
  const __m256i three = _mm256_set1_epi32(3);
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i bias = _mm256_and_si256(_mm256_srai_epi32(v, 31), three);
    const __m256i q = _mm256_srai_epi32(_mm256_add_epi32(v, bias), 2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), q);
  }
#elif NETSYN_SIMD_NEON
  const int32x4_t three = vdupq_n_s32(3);
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const int32x4_t v = vld1q_s32(src + i);
    const int32x4_t bias = vandq_s32(vshrq_n_s32(v, 31), three);
    vst1q_s32(dst + i, vshrq_n_s32(vaddq_s32(v, bias), 2));
  }
#endif
  for (; i < n; ++i) dst[i] = src[i] / 4;
}

inline void mapDiv3(const std::int32_t* src, std::int32_t* dst,
                    std::size_t n) {
#if NETSYN_SIMD_AVX2
  // Magic-multiply division: x/3 == hi32(x * 0x55555556) + (x < 0). The
  // widened product is exact; the logical srli by 32 leaves hi32's bit
  // pattern in each lane's low dword (upper dword garbage for negative x),
  // the sign term adds 1 for negative dividends with any carry confined to
  // the discarded upper dword, and packLow keeps just the low dwords —
  // clamping is neither needed (quotients are always in range) nor valid
  // (the 64-bit lanes do not hold sign-extended values here).
  const __m256i magic = _mm256_set1_epi64x(0x55555556);
  std::size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const auto div3 = [magic](__m256i w) {
      const __m256i hi =
          _mm256_srli_epi64(_mm256_mul_epi32(w, magic), 32);
      const __m256i sign = _mm256_srli_epi64(w, 63);  // 1 iff negative
      return _mm256_add_epi64(hi, sign);
    };
    const __m128i lo = detail::packLow(div3(detail::widenLo(v)));
    const __m128i hi = detail::packLow(div3(detail::widenHi(v)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_set_m128i(hi, lo));
  }
  for (; i < n; ++i) dst[i] = src[i] / 3;
#elif NETSYN_SIMD_NEON
  // Same magic multiply as the AVX2 path: x/3 == hi32(x * 0x55555556) +
  // (x < 0). vmull_s32 makes the product exact in 64 bits, the arithmetic
  // shift extracts hi32 (which always fits int32 — quotients are in range),
  // and vmovn_s64 keeps just that dword.
  const int32x2_t magic = vdup_n_s32(0x55555556);
  std::size_t i = 0;
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const int32x4_t v = vld1q_s32(src + i);
    const int64x2_t plo = vmull_s32(vget_low_s32(v), magic);
    const int64x2_t phi = vmull_s32(vget_high_s32(v), magic);
    const int32x4_t hi32 = vcombine_s32(vmovn_s64(vshrq_n_s64(plo, 32)),
                                        vmovn_s64(vshrq_n_s64(phi, 32)));
    vst1q_s32(dst + i, vaddq_s32(hi32, detail::signBit(v)));
  }
  for (; i < n; ++i) dst[i] = src[i] / 3;
#else
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] / 3;
#endif
}

// ---- ZIPWITH combiners over two aligned blocks ------------------------------
// dst[i] = saturate(op(a[i], b[i])); dst must not overlap a or b.

inline void zipAdd(const std::int32_t* a, const std::int32_t* b,
                   std::int32_t* dst, std::size_t n) {
#if NETSYN_SIMD_AVX2
  detail::zipWiden(
      a, b, dst, n,
      [](__m256i x, __m256i y) { return _mm256_add_epi64(x, y); },
      [](I64 x, I64 y) { return x + y; });
#elif NETSYN_SIMD_NEON
  detail::zipNeon(
      a, b, dst, n,
      [](int32x4_t x, int32x4_t y) { return vqaddq_s32(x, y); },
      [](I64 x, I64 y) { return x + y; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(a[i]) + b[i]);
#endif
}

inline void zipSub(const std::int32_t* a, const std::int32_t* b,
                   std::int32_t* dst, std::size_t n) {
#if NETSYN_SIMD_AVX2
  detail::zipWiden(
      a, b, dst, n,
      [](__m256i x, __m256i y) { return _mm256_sub_epi64(x, y); },
      [](I64 x, I64 y) { return x - y; });
#elif NETSYN_SIMD_NEON
  detail::zipNeon(
      a, b, dst, n,
      [](int32x4_t x, int32x4_t y) { return vqsubq_s32(x, y); },
      [](I64 x, I64 y) { return x - y; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(a[i]) - b[i]);
#endif
}

inline void zipMul(const std::int32_t* a, const std::int32_t* b,
                   std::int32_t* dst, std::size_t n) {
#if NETSYN_SIMD_AVX2
  detail::zipWiden(
      a, b, dst, n,
      [](__m256i x, __m256i y) { return _mm256_mul_epi32(x, y); },
      [](I64 x, I64 y) { return x * y; });
#elif NETSYN_SIMD_NEON
  detail::zipNeon(
      a, b, dst, n,
      [](int32x4_t x, int32x4_t y) {
        const int64x2_t lo = vmull_s32(vget_low_s32(x), vget_low_s32(y));
        const int64x2_t hi = vmull_s32(vget_high_s32(x), vget_high_s32(y));
        return vcombine_s32(vqmovn_s64(lo), vqmovn_s64(hi));
      },
      [](I64 x, I64 y) { return x * y; });
#else
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = saturate(static_cast<I64>(a[i]) * b[i]);
#endif
}

// min/max of two int32 is itself an int32: no widening or clamp needed.
inline void zipMin(const std::int32_t* a, const std::int32_t* b,
                   std::int32_t* dst, std::size_t n) {
  std::size_t i = 0;
#if NETSYN_SIMD_AVX2
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_min_epi32(va, vb));
  }
#elif NETSYN_SIMD_NEON
  for (; i + kLaneWidth <= n; i += kLaneWidth)
    vst1q_s32(dst + i, vminq_s32(vld1q_s32(a + i), vld1q_s32(b + i)));
#endif
  for (; i < n; ++i) dst[i] = a[i] < b[i] ? a[i] : b[i];
}

inline void zipMax(const std::int32_t* a, const std::int32_t* b,
                   std::int32_t* dst, std::size_t n) {
  std::size_t i = 0;
#if NETSYN_SIMD_AVX2
  for (; i + kLaneWidth <= n; i += kLaneWidth) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_max_epi32(va, vb));
  }
#elif NETSYN_SIMD_NEON
  for (; i + kLaneWidth <= n; i += kLaneWidth)
    vst1q_s32(dst + i, vmaxq_s32(vld1q_s32(a + i), vld1q_s32(b + i)));
#endif
  for (; i < n; ++i) dst[i] = a[i] > b[i] ? a[i] : b[i];
}

}  // namespace netsyn::dsl::simd
