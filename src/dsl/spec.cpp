#include "dsl/spec.hpp"

namespace netsyn::dsl {

bool satisfiesSpec(const Program& program, const Spec& spec) {
  for (const IOExample& ex : spec.examples) {
    if (!(eval(program, ex.inputs) == ex.output)) return false;
  }
  return true;
}

}  // namespace netsyn::dsl
