#include "dsl/spec.hpp"

namespace netsyn::dsl {
namespace {

inline void hashMix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (std::size_t b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

void hashValue(std::uint64_t& h, const Value& v) {
  hashMix(h, static_cast<std::uint64_t>(v.type()));
  if (v.isInt()) {
    hashMix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.asInt())));
  } else {
    const auto& list = v.asList();
    hashMix(h, list.size());
    for (std::int32_t x : list)
      hashMix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)));
  }
}

}  // namespace

std::uint64_t Spec::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hashMix(h, examples.size());
  for (const IOExample& ex : examples) {
    hashMix(h, ex.inputs.size());
    for (const Value& in : ex.inputs) hashValue(h, in);
    hashValue(h, ex.output);
  }
  return h;
}

bool satisfiesSpec(const Program& program, const Spec& spec) {
  for (const IOExample& ex : spec.examples) {
    if (!(eval(program, ex.inputs) == ex.output)) return false;
  }
  return true;
}

}  // namespace netsyn::dsl
