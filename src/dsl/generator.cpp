#include "dsl/generator.hpp"

#include "dsl/domain.hpp"

namespace netsyn::dsl {

Generator::Generator(const Domain& domain)
    : Generator(domain.makeGeneratorConfig()) {}

const Domain& Generator::domain() const { return resolveDomain(config_.domain); }

InputSignature Generator::randomSignature(util::Rng& rng) const {
  InputSignature sig{Type::List};
  if (rng.bernoulli(config_.intInputProbability)) sig.push_back(Type::Int);
  return sig;
}

Value Generator::randomValue(Type t, util::Rng& rng) const {
  if (t == Type::Int) {
    const std::int32_t lo = config_.useIntRange ? config_.intMinValue
                                                : config_.minValue;
    const std::int32_t hi = config_.useIntRange ? config_.intMaxValue
                                                : config_.maxValue;
    return Value(static_cast<std::int32_t>(rng.uniformInt(lo, hi)));
  }
  if (auto* sample = domain().sampleListValue) return sample(config_, rng);
  const int len = static_cast<int>(
      rng.uniformInt(config_.minListLength, config_.maxListLength));
  std::vector<std::int32_t> xs;
  xs.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    xs.push_back(static_cast<std::int32_t>(
        rng.uniformInt(config_.minValue, config_.maxValue)));
  }
  return Value(std::move(xs));
}

std::vector<Value> Generator::randomInputs(const InputSignature& sig,
                                           util::Rng& rng) const {
  std::vector<Value> inputs;
  inputs.reserve(sig.size());
  for (Type t : sig) inputs.push_back(randomValue(t, rng));
  return inputs;
}

std::optional<Program> Generator::randomProgram(
    std::size_t length, const InputSignature& sig, util::Rng& rng,
    std::optional<Type> outputType) const {
  if (length == 0) return Program{};

  // Sample in domain-local index space. For the list domain the vocabulary
  // is the identity over 0..kNumFunctions-1, so the draws (and the RNG
  // stream) are exactly the pre-domain generator's.
  const Domain& dom = domain();
  const std::vector<FuncId>& vocab = dom.vocabulary;
  auto randomFunc = [&rng, &vocab]() {
    return vocab[rng.uniform(vocab.size())];
  };
  const std::vector<FuncId>& finals =
      outputType ? dom.returning(*outputType) : vocab;
  auto randomFinal = [&]() {
    return outputType ? rng.pick(finals) : randomFunc();
  };
  if (outputType && finals.empty()) return std::nullopt;  // domain lacks type

  std::vector<FuncId> fns(length);
  for (std::size_t i = 0; i + 1 < length; ++i) fns[i] = randomFunc();
  fns[length - 1] = randomFinal();

  Program program(std::move(fns));
  for (int attempt = 0; attempt < config_.maxAttempts; ++attempt) {
    const auto live = liveMask(program, sig);
    bool allLive = true;
    // Re-randomize dead statements in place; keeping the live prefix intact
    // makes this converge far faster than full resampling.
    for (std::size_t k = 0; k < length; ++k) {
      if (live[k]) continue;
      allLive = false;
      program.set(k, k + 1 == length ? randomFinal() : randomFunc());
    }
    if (allLive) return program;
  }
  return std::nullopt;
}

std::optional<Spec> Generator::makeSpec(const Program& program,
                                        const InputSignature& sig,
                                        std::size_t m, util::Rng& rng) const {
  for (int attempt = 0; attempt < config_.maxAttempts; ++attempt) {
    Spec spec;
    spec.examples.reserve(m);
    for (std::size_t j = 0; j < m; ++j) {
      IOExample ex;
      ex.inputs = randomInputs(sig, rng);
      ex.output = eval(program, ex.inputs);
      spec.examples.push_back(std::move(ex));
    }
    // Reject degenerate specs: every output equal to the type default gives
    // the synthesizer (and the fitness model) nothing to distinguish.
    bool degenerate = true;
    for (const IOExample& ex : spec.examples) {
      if (!(ex.output == Value::defaultFor(ex.output.type()))) {
        degenerate = false;
        break;
      }
    }
    if (!degenerate) return spec;
  }
  return std::nullopt;
}

std::optional<Generator::TestCase> Generator::randomTestCase(
    std::size_t length, std::size_t m, bool singleton, util::Rng& rng) const {
  const Type want = singleton ? Type::Int : Type::List;
  for (int attempt = 0; attempt < config_.maxAttempts; ++attempt) {
    const InputSignature sig = randomSignature(rng);
    auto program = randomProgram(length, sig, rng, want);
    if (!program) continue;
    auto spec = makeSpec(*program, sig, m, rng);
    if (!spec) continue;
    return TestCase{std::move(*program), sig, std::move(*spec)};
  }
  return std::nullopt;
}

}  // namespace netsyn::dsl
