#include "dsl/functions.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "domains/strdsl/str_ops.hpp"
#include "dsl/lanes.hpp"
#include "dsl/simd.hpp"

namespace netsyn::dsl {
namespace {

using List = std::vector<std::int32_t>;
using I64 = std::int64_t;

// ---- element-level lambdas -------------------------------------------------

bool isPositive(std::int32_t v) { return v > 0; }
bool isNegative(std::int32_t v) { return v < 0; }
bool isOdd(std::int32_t v) { return v % 2 != 0; }
bool isEven(std::int32_t v) { return v % 2 == 0; }

// ---- function bodies (paper Appendix A) -------------------------------------
//
// Every body writes its result into `out` in place: int producers via
// Value::setInt, list producers by refilling the retained buffer returned by
// Value::makeList. None of the bodies may read an argument after the first
// write to `out` unless the argument is a distinct object (the interpreter
// never aliases `out` with an argument).

void head(const List& xs, Value& out) { out.setInt(xs.empty() ? 0 : xs.front()); }
void last(const List& xs, Value& out) { out.setInt(xs.empty() ? 0 : xs.back()); }

void minimum(const List& xs, Value& out) {
  out.setInt(xs.empty() ? 0 : *std::min_element(xs.begin(), xs.end()));
}
void maximum(const List& xs, Value& out) {
  out.setInt(xs.empty() ? 0 : *std::max_element(xs.begin(), xs.end()));
}

void sum(const List& xs, Value& out) {
  I64 s = 0;
  for (std::int32_t v : xs) s += v;  // no overflow: |xs| * 2^31 << 2^63
  out.setInt(saturate(s));
}

template <bool (*Pred)(std::int32_t)>
void count(const List& xs, Value& out) {
  std::int32_t c = 0;
  for (std::int32_t v : xs)
    if (Pred(v)) ++c;
  out.setInt(c);
}

template <bool (*Pred)(std::int32_t)>
void filter(const List& xs, Value& out) {
  // Branchless compaction: always store, conditionally advance. The
  // predicate outcome is data-dependent (≈50% mispredict on random lists),
  // so this beats the naive `if (...) push_back` loop on both the legacy
  // and the zero-allocation path.
  List& o = out.makeList();
  o.resize(xs.size());
  std::size_t n = 0;
  for (std::int32_t v : xs) {
    o[n] = v;
    n += Pred(v) ? 1 : 0;
  }
  o.resize(n);
}

template <I64 (*Op)(I64)>
void map(const List& xs, Value& out) {
  List& o = out.makeList();
  o.resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) o[i] = saturate(Op(xs[i]));
}

I64 mapAdd1(I64 v) { return v + 1; }
I64 mapSub1(I64 v) { return v - 1; }
I64 mapMul2(I64 v) { return v * 2; }
I64 mapMul3(I64 v) { return v * 3; }
I64 mapMul4(I64 v) { return v * 4; }
I64 mapDiv2(I64 v) { return v / 2; }
I64 mapDiv3(I64 v) { return v / 3; }
I64 mapDiv4(I64 v) { return v / 4; }
I64 mapNeg(I64 v) { return -v; }
I64 mapSquare(I64 v) { return v * v; }

void reverse(const List& xs, Value& out) {
  out.makeList().assign(xs.rbegin(), xs.rend());
}

void sortAsc(const List& xs, Value& out) {
  List& o = out.makeList();
  o.assign(xs.begin(), xs.end());
  std::sort(o.begin(), o.end());
}

// SCANL1 per the paper: O_0 = I_0, O_n = lambda(I_n, O_{n-1}) for n > 0.
template <I64 (*Op)(I64, I64)>
void scanl1(const List& xs, Value& out) {
  List& o = out.makeList();
  o.resize(xs.size());
  for (std::size_t n = 0; n < xs.size(); ++n) {
    if (n == 0) o[0] = xs[0];
    else o[n] = saturate(Op(xs[n], o[n - 1]));
  }
}

void take(std::int32_t n, const List& xs, Value& out) {
  const auto k = static_cast<std::size_t>(
      std::clamp<I64>(n, 0, static_cast<I64>(xs.size())));
  out.makeList().assign(xs.begin(),
                        xs.begin() + static_cast<std::ptrdiff_t>(k));
}

void drop(std::int32_t n, const List& xs, Value& out) {
  const auto k = static_cast<std::size_t>(
      std::clamp<I64>(n, 0, static_cast<I64>(xs.size())));
  out.makeList().assign(xs.begin() + static_cast<std::ptrdiff_t>(k),
                        xs.end());
}

void deleteAll(std::int32_t x, const List& xs, Value& out) {
  List& o = out.makeList();
  o.resize(xs.size());
  std::size_t n = 0;
  for (std::int32_t v : xs) {  // branchless, as in filter
    o[n] = v;
    n += v != x ? 1 : 0;
  }
  o.resize(n);
}

void insert(std::int32_t x, const List& xs, Value& out) {
  List& o = out.makeList();
  o.assign(xs.begin(), xs.end());
  o.push_back(x);
}

template <I64 (*Op)(I64, I64)>
void zipWith(const List& a, const List& b, Value& out) {
  const std::size_t n = std::min(a.size(), b.size());
  List& o = out.makeList();
  o.resize(n);
  for (std::size_t i = 0; i < n; ++i) o[i] = saturate(Op(a[i], b[i]));
}

I64 opAdd(I64 a, I64 b) { return a + b; }
I64 opSub(I64 a, I64 b) { return a - b; }
I64 opMul(I64 a, I64 b) { return a * b; }
I64 opMin(I64 a, I64 b) { return a < b ? a : b; }
I64 opMax(I64 a, I64 b) { return a > b ? a : b; }

void access(std::int32_t n, const List& xs, Value& out) {
  if (n < 0 || static_cast<std::size_t>(n) >= xs.size()) out.setInt(0);
  else out.setInt(xs[static_cast<std::size_t>(n)]);
}

void search(std::int32_t x, const List& xs, Value& out) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == x) {
      out.setInt(static_cast<std::int32_t>(i));
      return;
    }
  }
  out.setInt(-1);
}

// ---- lane-parallel bodies (SoATrace protocol, see lanes.hpp) ---------------
//
// Each kernel applies one function to every lane of the group at once. The
// dense invariant (lane segments of a slot are contiguous in lane order)
// holds for every argument slot and must be re-established for the output
// slot. Producers reserve their full output bound with grow() BEFORE taking
// any arena pointer — grow() may reallocate the arena.

// MAP family: the argument slot's lane segments form one contiguous block
// and the lambda is elementwise, so the whole group maps in a single SIMD
// block call; per-lane lengths pass through unchanged.
template <void (*Block)(const std::int32_t*, std::int32_t*, std::size_t)>
void laneMap(SoATrace& t, std::uint32_t a0, std::uint32_t, std::uint32_t out) {
  const std::size_t total = t.listTotal(a0);
  std::int32_t* dst = t.grow(total);
  const std::int32_t* src = t.arena.data() + t.offBlock(a0)[0];
  std::copy_n(t.lenBlock(a0), t.lanes, t.lenBlock(out));
  Block(src, dst, total);
  t.finishDense(out);
}

// ZIPWITH family: when every lane has equally long arguments (the common
// case — both sides derived from the same input list), the two dense blocks
// align element-for-element and one SIMD call covers the group; otherwise
// each lane's min-length prefix pair is combined separately (still through
// the block kernel, so long lanes vectorize).
template <void (*Block)(const std::int32_t*, const std::int32_t*,
                        std::int32_t*, std::size_t)>
void laneZip(SoATrace& t, std::uint32_t a0, std::uint32_t a1,
             std::uint32_t out) {
  const std::uint32_t* la = t.lenBlock(a0);
  const std::uint32_t* lb = t.lenBlock(a1);
  std::uint32_t* lo = t.lenBlock(out);
  bool aligned = true;
  std::size_t total = 0;
  for (std::size_t j = 0; j < t.lanes; ++j) {
    lo[j] = std::min(la[j], lb[j]);
    total += lo[j];
    aligned &= la[j] == lb[j];
  }
  std::int32_t* dst = t.grow(total);
  const std::int32_t* base = t.arena.data();
  if (aligned) {
    Block(base + t.offBlock(a0)[0], base + t.offBlock(a1)[0], dst, total);
    t.finishDense(out);
    return;
  }
  const std::uint32_t* oa = t.offBlock(a0);
  const std::uint32_t* ob = t.offBlock(a1);
  std::uint32_t* oo = t.offBlock(out);
  std::uint32_t cursor = static_cast<std::uint32_t>(t.used);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    Block(base + oa[j], base + ob[j], dst, lo[j]);
    oo[j] = cursor;
    cursor += lo[j];
    dst += lo[j];
  }
  t.used = cursor;
}

// FILTER family / DELETE: per-lane branchless compaction, same store-always
// advance-conditionally trick as the scalar bodies.
template <bool (*Pred)(std::int32_t)>
void laneFilter(SoATrace& t, std::uint32_t a0, std::uint32_t,
                std::uint32_t out) {
  std::int32_t* dst = t.grow(t.listTotal(a0));  // output never exceeds input
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a0);
  std::uint32_t* ooff = t.offBlock(out);
  std::uint32_t* olen = t.lenBlock(out);
  std::uint32_t cursor = static_cast<std::uint32_t>(t.used);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t* src = base + aoff[j];
    std::size_t m = 0;
    for (std::uint32_t i = 0; i < alen[j]; ++i) {
      dst[m] = src[i];
      m += Pred(src[i]) ? 1 : 0;
    }
    ooff[j] = cursor;
    olen[j] = static_cast<std::uint32_t>(m);
    cursor += static_cast<std::uint32_t>(m);
    dst += m;
  }
  t.used = cursor;
}

void laneDelete(SoATrace& t, std::uint32_t a0, std::uint32_t a1,
                std::uint32_t out) {
  std::int32_t* dst = t.grow(t.listTotal(a1));
  const std::int32_t* base = t.arena.data();
  const std::int32_t* xs = t.intBlock(a0);
  const std::uint32_t* aoff = t.offBlock(a1);
  const std::uint32_t* alen = t.lenBlock(a1);
  std::uint32_t* ooff = t.offBlock(out);
  std::uint32_t* olen = t.lenBlock(out);
  std::uint32_t cursor = static_cast<std::uint32_t>(t.used);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t* src = base + aoff[j];
    const std::int32_t x = xs[j];
    std::size_t m = 0;
    for (std::uint32_t i = 0; i < alen[j]; ++i) {
      dst[m] = src[i];
      m += src[i] != x ? 1 : 0;
    }
    ooff[j] = cursor;
    olen[j] = static_cast<std::uint32_t>(m);
    cursor += static_cast<std::uint32_t>(m);
    dst += m;
  }
  t.used = cursor;
}

// SCANL1 family: the recurrence is sequential within a lane, so this runs
// lane by lane; lanes are still batched through one kernel activation.
template <I64 (*Op)(I64, I64)>
void laneScan(SoATrace& t, std::uint32_t a0, std::uint32_t,
              std::uint32_t out) {
  t.grow(t.listTotal(a0));
  std::copy_n(t.lenBlock(a0), t.lanes, t.lenBlock(out));
  t.finishDense(out);
  std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* ooff = t.offBlock(out);
  const std::uint32_t* olen = t.lenBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::uint32_t m = olen[j];
    if (m == 0) continue;
    const std::int32_t* src = base + aoff[j];
    std::int32_t* o = base + ooff[j];
    // Keep the running value in a register: re-reading o[i-1] from memory
    // would chain every element through a store-to-load round trip.
    std::int32_t acc = src[0];
    o[0] = acc;
    for (std::uint32_t i = 1; i < m; ++i) {
      acc = saturate(Op(src[i], acc));
      o[i] = acc;
    }
  }
}

void laneReverse(SoATrace& t, std::uint32_t a0, std::uint32_t,
                 std::uint32_t out) {
  t.grow(t.listTotal(a0));
  std::copy_n(t.lenBlock(a0), t.lanes, t.lenBlock(out));
  t.finishDense(out);
  std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* ooff = t.offBlock(out);
  const std::uint32_t* olen = t.lenBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t* src = base + aoff[j];
    std::int32_t* o = base + ooff[j];
    for (std::uint32_t i = 0; i < olen[j]; ++i) o[i] = src[olen[j] - 1 - i];
  }
}

void laneSort(SoATrace& t, std::uint32_t a0, std::uint32_t,
              std::uint32_t out) {
  const std::size_t total = t.listTotal(a0);
  std::int32_t* dst = t.grow(total);
  copyLane(dst, t.arena.data() + t.offBlock(a0)[0], total);
  std::copy_n(t.lenBlock(a0), t.lanes, t.lenBlock(out));
  t.finishDense(out);
  std::int32_t* base = t.arena.data();
  const std::uint32_t* ooff = t.offBlock(out);
  const std::uint32_t* olen = t.lenBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j)
    std::sort(base + ooff[j], base + ooff[j] + olen[j]);
}

void laneTake(SoATrace& t, std::uint32_t a0, std::uint32_t a1,
              std::uint32_t out) {
  const std::int32_t* ns = t.intBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a1);
  std::uint32_t* olen = t.lenBlock(out);
  std::size_t total = 0;
  for (std::size_t j = 0; j < t.lanes; ++j) {
    olen[j] = static_cast<std::uint32_t>(std::clamp<I64>(
        ns[j], 0, static_cast<I64>(alen[j])));
    total += olen[j];
  }
  std::int32_t* dst = t.grow(total);
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a1);
  std::uint32_t* ooff = t.offBlock(out);
  std::uint32_t cursor = static_cast<std::uint32_t>(t.used);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    copyLane(dst, base + aoff[j], olen[j]);
    ooff[j] = cursor;
    cursor += olen[j];
    dst += olen[j];
  }
  t.used = cursor;
}

void laneDrop(SoATrace& t, std::uint32_t a0, std::uint32_t a1,
              std::uint32_t out) {
  const std::int32_t* ns = t.intBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a1);
  std::uint32_t* olen = t.lenBlock(out);
  std::size_t total = 0;
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const auto k = static_cast<std::uint32_t>(std::clamp<I64>(
        ns[j], 0, static_cast<I64>(alen[j])));
    olen[j] = alen[j] - k;
    total += olen[j];
  }
  std::int32_t* dst = t.grow(total);
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a1);
  std::uint32_t* ooff = t.offBlock(out);
  std::uint32_t cursor = static_cast<std::uint32_t>(t.used);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    copyLane(dst, base + aoff[j] + (alen[j] - olen[j]), olen[j]);
    ooff[j] = cursor;
    cursor += olen[j];
    dst += olen[j];
  }
  t.used = cursor;
}

void laneInsert(SoATrace& t, std::uint32_t a0, std::uint32_t a1,
                std::uint32_t out) {
  std::int32_t* dst = t.grow(t.listTotal(a1) + t.lanes);
  const std::int32_t* base = t.arena.data();
  const std::int32_t* xs = t.intBlock(a0);
  const std::uint32_t* aoff = t.offBlock(a1);
  const std::uint32_t* alen = t.lenBlock(a1);
  std::uint32_t* ooff = t.offBlock(out);
  std::uint32_t* olen = t.lenBlock(out);
  std::uint32_t cursor = static_cast<std::uint32_t>(t.used);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    copyLane(dst, base + aoff[j], alen[j]);
    dst[alen[j]] = xs[j];
    ooff[j] = cursor;
    olen[j] = alen[j] + 1;
    cursor += olen[j];
    dst += olen[j];
  }
  t.used = cursor;
}

// Aggregates and element accessors ([int] -> int, int,[int] -> int): short
// per-lane reductions into the output slot's int block.
void laneHead(SoATrace& t, std::uint32_t a0, std::uint32_t,
              std::uint32_t out) {
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a0);
  std::int32_t* o = t.intBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j)
    o[j] = alen[j] ? base[aoff[j]] : 0;
}

void laneLast(SoATrace& t, std::uint32_t a0, std::uint32_t,
              std::uint32_t out) {
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a0);
  std::int32_t* o = t.intBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j)
    o[j] = alen[j] ? base[aoff[j] + alen[j] - 1] : 0;
}

template <bool kMax>
void laneExtremum(SoATrace& t, std::uint32_t a0, std::uint32_t,
                  std::uint32_t out) {
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a0);
  std::int32_t* o = t.intBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t* src = base + aoff[j];
    std::int32_t best = 0;
    for (std::uint32_t i = 0; i < alen[j]; ++i)
      if (i == 0 || (kMax ? src[i] > best : src[i] < best)) best = src[i];
    o[j] = best;
  }
}

void laneSum(SoATrace& t, std::uint32_t a0, std::uint32_t,
             std::uint32_t out) {
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a0);
  std::int32_t* o = t.intBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t* src = base + aoff[j];
    I64 s = 0;
    for (std::uint32_t i = 0; i < alen[j]; ++i) s += src[i];
    o[j] = saturate(s);
  }
}

template <bool (*Pred)(std::int32_t)>
void laneCount(SoATrace& t, std::uint32_t a0, std::uint32_t,
               std::uint32_t out) {
  const std::int32_t* base = t.arena.data();
  const std::uint32_t* aoff = t.offBlock(a0);
  const std::uint32_t* alen = t.lenBlock(a0);
  std::int32_t* o = t.intBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t* src = base + aoff[j];
    std::int32_t c = 0;
    for (std::uint32_t i = 0; i < alen[j]; ++i) c += Pred(src[i]) ? 1 : 0;
    o[j] = c;
  }
}

void laneAccess(SoATrace& t, std::uint32_t a0, std::uint32_t a1,
                std::uint32_t out) {
  const std::int32_t* base = t.arena.data();
  const std::int32_t* ns = t.intBlock(a0);
  const std::uint32_t* aoff = t.offBlock(a1);
  const std::uint32_t* alen = t.lenBlock(a1);
  std::int32_t* o = t.intBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t n = ns[j];
    o[j] = (n < 0 || static_cast<std::uint32_t>(n) >= alen[j])
               ? 0
               : base[aoff[j] + static_cast<std::uint32_t>(n)];
  }
}

void laneSearch(SoATrace& t, std::uint32_t a0, std::uint32_t a1,
                std::uint32_t out) {
  const std::int32_t* base = t.arena.data();
  const std::int32_t* xs = t.intBlock(a0);
  const std::uint32_t* aoff = t.offBlock(a1);
  const std::uint32_t* alen = t.lenBlock(a1);
  std::int32_t* o = t.intBlock(out);
  for (std::size_t j = 0; j < t.lanes; ++j) {
    const std::int32_t* src = base + aoff[j];
    std::int32_t found = -1;
    for (std::uint32_t i = 0; i < alen[j]; ++i) {
      if (src[i] == xs[j]) {
        found = static_cast<std::int32_t>(i);
        break;
      }
    }
    o[j] = found;
  }
}

// ---- dispatch table ---------------------------------------------------------

using Body1 = void (*)(const List&, Value&);
using BodyIntList = void (*)(std::int32_t, const List&, Value&);
using BodyListList = void (*)(const List&, const List&, Value&);

struct Entry {
  FunctionInfo info;
  Body1 unary = nullptr;          // [int] -> *
  BodyIntList intList = nullptr;  // int,[int] -> *
  BodyListList listList = nullptr;  // [int],[int] -> [int]
  LaneKernel lane = nullptr;  // SoA lane-group body; null -> per-lane fallback
};

constexpr Type kInt = Type::Int;
constexpr Type kList = Type::List;

// Order defines FuncId; paperNumber preserves the paper's 1..41 numbering
// for the list DSL (str ops carry 0: they are not in the paper's Sigma).
// Ids 0..kNumFunctions-1 are the paper's Appendix A; the str-domain ops
// (bodies in domains/strdsl/str_ops.cpp) follow and must never be
// interleaved — generators, NN probability maps, and saved corpora all rely
// on the list prefix staying dense and stable.
namespace str = netsyn::domains::strdsl;

const std::array<Entry, kTotalFunctions> kTable = {{

    {{"ACCESS", 1, 2, {kInt, kList}, kInt}, nullptr, access, nullptr,
     laneAccess},
    {{"COUNT(>0)", 2, 1, {kList, kList}, kInt}, count<isPositive>, nullptr,
     nullptr, laneCount<isPositive>},
    {{"COUNT(<0)", 3, 1, {kList, kList}, kInt}, count<isNegative>, nullptr,
     nullptr, laneCount<isNegative>},
    {{"COUNT(odd)", 4, 1, {kList, kList}, kInt}, count<isOdd>, nullptr,
     nullptr, laneCount<isOdd>},
    {{"COUNT(even)", 5, 1, {kList, kList}, kInt}, count<isEven>, nullptr,
     nullptr, laneCount<isEven>},
    {{"HEAD", 6, 1, {kList, kList}, kInt}, head, nullptr, nullptr, laneHead},
    {{"LAST", 7, 1, {kList, kList}, kInt}, last, nullptr, nullptr, laneLast},
    {{"MINIMUM", 8, 1, {kList, kList}, kInt}, minimum, nullptr, nullptr,
     laneExtremum<false>},
    {{"MAXIMUM", 9, 1, {kList, kList}, kInt}, maximum, nullptr, nullptr,
     laneExtremum<true>},
    {{"SEARCH", 10, 2, {kInt, kList}, kInt}, nullptr, search, nullptr,
     laneSearch},
    {{"SUM", 11, 1, {kList, kList}, kInt}, sum, nullptr, nullptr, laneSum},
    {{"DELETE", 12, 2, {kInt, kList}, kList}, nullptr, deleteAll, nullptr,
     laneDelete},
    {{"DROP", 13, 2, {kInt, kList}, kList}, nullptr, drop, nullptr, laneDrop},
    {{"FILTER(>0)", 14, 1, {kList, kList}, kList}, filter<isPositive>,
     nullptr, nullptr, laneFilter<isPositive>},
    {{"FILTER(<0)", 15, 1, {kList, kList}, kList}, filter<isNegative>,
     nullptr, nullptr, laneFilter<isNegative>},
    {{"FILTER(odd)", 16, 1, {kList, kList}, kList}, filter<isOdd>, nullptr,
     nullptr, laneFilter<isOdd>},
    {{"FILTER(even)", 17, 1, {kList, kList}, kList}, filter<isEven>, nullptr,
     nullptr, laneFilter<isEven>},
    {{"INSERT", 18, 2, {kInt, kList}, kList}, nullptr, insert, nullptr,
     laneInsert},
    {{"MAP(+1)", 19, 1, {kList, kList}, kList}, map<mapAdd1>, nullptr,
     nullptr, laneMap<simd::mapAdd1>},
    {{"MAP(-1)", 20, 1, {kList, kList}, kList}, map<mapSub1>, nullptr,
     nullptr, laneMap<simd::mapSub1>},
    {{"MAP(*2)", 21, 1, {kList, kList}, kList}, map<mapMul2>, nullptr,
     nullptr, laneMap<simd::mapMul2>},
    {{"MAP(*3)", 22, 1, {kList, kList}, kList}, map<mapMul3>, nullptr,
     nullptr, laneMap<simd::mapMul3>},
    {{"MAP(*4)", 23, 1, {kList, kList}, kList}, map<mapMul4>, nullptr,
     nullptr, laneMap<simd::mapMul4>},
    {{"MAP(/2)", 24, 1, {kList, kList}, kList}, map<mapDiv2>, nullptr,
     nullptr, laneMap<simd::mapDiv2>},
    {{"MAP(/3)", 25, 1, {kList, kList}, kList}, map<mapDiv3>, nullptr,
     nullptr, laneMap<simd::mapDiv3>},
    {{"MAP(/4)", 26, 1, {kList, kList}, kList}, map<mapDiv4>, nullptr,
     nullptr, laneMap<simd::mapDiv4>},
    {{"MAP(*(-1))", 27, 1, {kList, kList}, kList}, map<mapNeg>, nullptr,
     nullptr, laneMap<simd::mapNeg>},
    {{"MAP(^2)", 28, 1, {kList, kList}, kList}, map<mapSquare>, nullptr,
     nullptr, laneMap<simd::mapSquare>},
    {{"REVERSE", 29, 1, {kList, kList}, kList}, reverse, nullptr, nullptr,
     laneReverse},
    {{"SCANL1(+)", 30, 1, {kList, kList}, kList}, scanl1<opAdd>, nullptr,
     nullptr, laneScan<opAdd>},
    {{"SCANL1(-)", 31, 1, {kList, kList}, kList}, scanl1<opSub>, nullptr,
     nullptr, laneScan<opSub>},
    {{"SCANL1(*)", 32, 1, {kList, kList}, kList}, scanl1<opMul>, nullptr,
     nullptr, laneScan<opMul>},
    {{"SCANL1(min)", 33, 1, {kList, kList}, kList}, scanl1<opMin>, nullptr,
     nullptr, laneScan<opMin>},
    {{"SCANL1(max)", 34, 1, {kList, kList}, kList}, scanl1<opMax>, nullptr,
     nullptr, laneScan<opMax>},
    {{"SORT", 35, 1, {kList, kList}, kList}, sortAsc, nullptr, nullptr,
     laneSort},
    {{"TAKE", 36, 2, {kInt, kList}, kList}, nullptr, take, nullptr, laneTake},
    {{"ZIPWITH(+)", 37, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opAdd>, laneZip<simd::zipAdd>},
    {{"ZIPWITH(-)", 38, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opSub>, laneZip<simd::zipSub>},
    {{"ZIPWITH(*)", 39, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMul>, laneZip<simd::zipMul>},
    {{"ZIPWITH(min)", 40, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMin>, laneZip<simd::zipMin>},
    {{"ZIPWITH(max)", 41, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMax>, laneZip<simd::zipMax>},
    // ---- str domain (strings as char-code lists) ----
    {{"STR.CONCAT", 0, 2, {kList, kList}, kList}, nullptr, nullptr,
     str::concat},
    {{"STR.UPPER", 0, 1, {kList, kList}, kList}, str::upper},
    {{"STR.LOWER", 0, 1, {kList, kList}, kList}, str::lower},
    {{"STR.TITLE", 0, 1, {kList, kList}, kList}, str::title},
    {{"STR.CAPITALIZE", 0, 1, {kList, kList}, kList}, str::capitalize},
    {{"STR.TRIM", 0, 1, {kList, kList}, kList}, str::trim},
    {{"STR.REVERSE", 0, 1, {kList, kList}, kList}, str::reverse},
    {{"STR.FIRSTWORD", 0, 1, {kList, kList}, kList}, str::firstWord},
    {{"STR.LASTWORD", 0, 1, {kList, kList}, kList}, str::lastWord},
    {{"STR.INITIALS", 0, 1, {kList, kList}, kList}, str::initials},
    {{"STR.SQUEEZE", 0, 1, {kList, kList}, kList}, str::squeeze},
    {{"STR.HYPHENATE", 0, 1, {kList, kList}, kList}, str::hyphenate},
    {{"STR.ALPHA", 0, 1, {kList, kList}, kList}, str::alphaOnly},
    {{"STR.DIGITS", 0, 1, {kList, kList}, kList}, str::digitsOnly},
    {{"STR.LEN", 0, 1, {kList, kList}, kInt}, str::strLen},
    {{"STR.WORDS", 0, 1, {kList, kList}, kInt}, str::wordCount},
    {{"STR.TAKE", 0, 2, {kInt, kList}, kList}, nullptr, str::strTake, nullptr},
    {{"STR.DROP", 0, 2, {kInt, kList}, kList}, nullptr, str::strDrop, nullptr},
    {{"STR.WORD", 0, 2, {kInt, kList}, kList}, nullptr, str::word, nullptr},
    {{"STR.CHARAT", 0, 2, {kInt, kList}, kInt}, nullptr, str::charAt, nullptr},
}};

}  // namespace

const FunctionInfo& functionInfo(FuncId id) {
  assert(id < kTotalFunctions);
  return kTable[id].info;
}

FunctionBody functionBody(FuncId id) {
  assert(id < kTotalFunctions);
  const Entry& e = kTable[id];
  return FunctionBody{e.unary, e.intList, e.listList};
}

LaneKernel functionLaneKernel(FuncId id) {
  assert(id < kTotalFunctions);
  return kTable[id].lane;
}

void applyFunctionInto(FuncId id, std::span<const Value* const> args,
                       Value& out) {
  assert(id < kTotalFunctions);
  const Entry& e = kTable[id];
  if (args.size() != e.info.arity)
    throw std::invalid_argument("wrong arity for " + std::string(e.info.name));
  for (std::size_t i = 0; i < e.info.arity; ++i) {
    if (args[i]->type() != e.info.argTypes[i])
      throw std::invalid_argument("wrong argument type for " +
                                  std::string(e.info.name));
  }
  applyFunctionIntoUnchecked(id, args.data(), out);
}

void applyFunctionIntoUnchecked(FuncId id, const Value* const* args,
                                Value& out) {
  assert(id < kTotalFunctions);
  const Entry& e = kTable[id];
  assert(args[0] != nullptr && args[0]->type() == e.info.argTypes[0]);
  assert(e.info.arity < 2 ||
         (args[1] != nullptr && args[1]->type() == e.info.argTypes[1]));
  if (e.unary) {
    e.unary(args[0]->listUnchecked(), out);
  } else if (e.intList) {
    e.intList(args[0]->intUnchecked(), args[1]->listUnchecked(), out);
  } else {
    e.listList(args[0]->listUnchecked(), args[1]->listUnchecked(), out);
  }
}

Value applyFunction(FuncId id, std::span<const Value> args) {
  assert(id < kTotalFunctions);
  // Arity check before building the pointer span: a span of args.size()
  // over the kMaxArity-slot array would be ill-formed for oversized input.
  if (args.size() != kTable[id].info.arity)
    throw std::invalid_argument("wrong arity for " +
                                std::string(kTable[id].info.name));
  std::array<const Value*, kMaxArity> ptrs{};
  for (std::size_t i = 0; i < args.size(); ++i) ptrs[i] = &args[i];
  Value out;
  applyFunctionInto(id,
                    std::span<const Value* const>(ptrs.data(), args.size()),
                    out);
  return out;
}

std::optional<FuncId> functionByName(const std::string& name) {
  for (std::size_t i = 0; i < kTotalFunctions; ++i)
    if (name == kTable[i].info.name) return static_cast<FuncId>(i);
  return std::nullopt;
}

std::vector<FuncId> functionsReturning(Type t) {
  // Paper-Sigma scan only (see header): domain vocabularies own the str ops.
  std::vector<FuncId> out;
  for (std::size_t i = 0; i < kNumFunctions; ++i)
    if (kTable[i].info.returnType == t) out.push_back(static_cast<FuncId>(i));
  return out;
}

bool returnsInt(FuncId id) {
  return functionInfo(id).returnType == Type::Int;
}

}  // namespace netsyn::dsl
