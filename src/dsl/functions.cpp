#include "dsl/functions.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "domains/strdsl/str_ops.hpp"

namespace netsyn::dsl {
namespace {

using List = std::vector<std::int32_t>;
using I64 = std::int64_t;

// ---- element-level lambdas -------------------------------------------------

bool isPositive(std::int32_t v) { return v > 0; }
bool isNegative(std::int32_t v) { return v < 0; }
bool isOdd(std::int32_t v) { return v % 2 != 0; }
bool isEven(std::int32_t v) { return v % 2 == 0; }

// ---- function bodies (paper Appendix A) -------------------------------------
//
// Every body writes its result into `out` in place: int producers via
// Value::setInt, list producers by refilling the retained buffer returned by
// Value::makeList. None of the bodies may read an argument after the first
// write to `out` unless the argument is a distinct object (the interpreter
// never aliases `out` with an argument).

void head(const List& xs, Value& out) { out.setInt(xs.empty() ? 0 : xs.front()); }
void last(const List& xs, Value& out) { out.setInt(xs.empty() ? 0 : xs.back()); }

void minimum(const List& xs, Value& out) {
  out.setInt(xs.empty() ? 0 : *std::min_element(xs.begin(), xs.end()));
}
void maximum(const List& xs, Value& out) {
  out.setInt(xs.empty() ? 0 : *std::max_element(xs.begin(), xs.end()));
}

void sum(const List& xs, Value& out) {
  I64 s = 0;
  for (std::int32_t v : xs) s += v;  // no overflow: |xs| * 2^31 << 2^63
  out.setInt(saturate(s));
}

template <bool (*Pred)(std::int32_t)>
void count(const List& xs, Value& out) {
  std::int32_t c = 0;
  for (std::int32_t v : xs)
    if (Pred(v)) ++c;
  out.setInt(c);
}

template <bool (*Pred)(std::int32_t)>
void filter(const List& xs, Value& out) {
  // Branchless compaction: always store, conditionally advance. The
  // predicate outcome is data-dependent (≈50% mispredict on random lists),
  // so this beats the naive `if (...) push_back` loop on both the legacy
  // and the zero-allocation path.
  List& o = out.makeList();
  o.resize(xs.size());
  std::size_t n = 0;
  for (std::int32_t v : xs) {
    o[n] = v;
    n += Pred(v) ? 1 : 0;
  }
  o.resize(n);
}

template <I64 (*Op)(I64)>
void map(const List& xs, Value& out) {
  List& o = out.makeList();
  o.resize(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) o[i] = saturate(Op(xs[i]));
}

I64 mapAdd1(I64 v) { return v + 1; }
I64 mapSub1(I64 v) { return v - 1; }
I64 mapMul2(I64 v) { return v * 2; }
I64 mapMul3(I64 v) { return v * 3; }
I64 mapMul4(I64 v) { return v * 4; }
I64 mapDiv2(I64 v) { return v / 2; }
I64 mapDiv3(I64 v) { return v / 3; }
I64 mapDiv4(I64 v) { return v / 4; }
I64 mapNeg(I64 v) { return -v; }
I64 mapSquare(I64 v) { return v * v; }

void reverse(const List& xs, Value& out) {
  out.makeList().assign(xs.rbegin(), xs.rend());
}

void sortAsc(const List& xs, Value& out) {
  List& o = out.makeList();
  o.assign(xs.begin(), xs.end());
  std::sort(o.begin(), o.end());
}

// SCANL1 per the paper: O_0 = I_0, O_n = lambda(I_n, O_{n-1}) for n > 0.
template <I64 (*Op)(I64, I64)>
void scanl1(const List& xs, Value& out) {
  List& o = out.makeList();
  o.resize(xs.size());
  for (std::size_t n = 0; n < xs.size(); ++n) {
    if (n == 0) o[0] = xs[0];
    else o[n] = saturate(Op(xs[n], o[n - 1]));
  }
}

void take(std::int32_t n, const List& xs, Value& out) {
  const auto k = static_cast<std::size_t>(
      std::clamp<I64>(n, 0, static_cast<I64>(xs.size())));
  out.makeList().assign(xs.begin(),
                        xs.begin() + static_cast<std::ptrdiff_t>(k));
}

void drop(std::int32_t n, const List& xs, Value& out) {
  const auto k = static_cast<std::size_t>(
      std::clamp<I64>(n, 0, static_cast<I64>(xs.size())));
  out.makeList().assign(xs.begin() + static_cast<std::ptrdiff_t>(k),
                        xs.end());
}

void deleteAll(std::int32_t x, const List& xs, Value& out) {
  List& o = out.makeList();
  o.resize(xs.size());
  std::size_t n = 0;
  for (std::int32_t v : xs) {  // branchless, as in filter
    o[n] = v;
    n += v != x ? 1 : 0;
  }
  o.resize(n);
}

void insert(std::int32_t x, const List& xs, Value& out) {
  List& o = out.makeList();
  o.assign(xs.begin(), xs.end());
  o.push_back(x);
}

template <I64 (*Op)(I64, I64)>
void zipWith(const List& a, const List& b, Value& out) {
  const std::size_t n = std::min(a.size(), b.size());
  List& o = out.makeList();
  o.resize(n);
  for (std::size_t i = 0; i < n; ++i) o[i] = saturate(Op(a[i], b[i]));
}

I64 opAdd(I64 a, I64 b) { return a + b; }
I64 opSub(I64 a, I64 b) { return a - b; }
I64 opMul(I64 a, I64 b) { return a * b; }
I64 opMin(I64 a, I64 b) { return a < b ? a : b; }
I64 opMax(I64 a, I64 b) { return a > b ? a : b; }

void access(std::int32_t n, const List& xs, Value& out) {
  if (n < 0 || static_cast<std::size_t>(n) >= xs.size()) out.setInt(0);
  else out.setInt(xs[static_cast<std::size_t>(n)]);
}

void search(std::int32_t x, const List& xs, Value& out) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == x) {
      out.setInt(static_cast<std::int32_t>(i));
      return;
    }
  }
  out.setInt(-1);
}

// ---- dispatch table ---------------------------------------------------------

using Body1 = void (*)(const List&, Value&);
using BodyIntList = void (*)(std::int32_t, const List&, Value&);
using BodyListList = void (*)(const List&, const List&, Value&);

struct Entry {
  FunctionInfo info;
  Body1 unary = nullptr;          // [int] -> *
  BodyIntList intList = nullptr;  // int,[int] -> *
  BodyListList listList = nullptr;  // [int],[int] -> [int]
};

constexpr Type kInt = Type::Int;
constexpr Type kList = Type::List;

// Order defines FuncId; paperNumber preserves the paper's 1..41 numbering
// for the list DSL (str ops carry 0: they are not in the paper's Sigma).
// Ids 0..kNumFunctions-1 are the paper's Appendix A; the str-domain ops
// (bodies in domains/strdsl/str_ops.cpp) follow and must never be
// interleaved — generators, NN probability maps, and saved corpora all rely
// on the list prefix staying dense and stable.
namespace str = netsyn::domains::strdsl;

const std::array<Entry, kTotalFunctions> kTable = {{

    {{"ACCESS", 1, 2, {kInt, kList}, kInt}, nullptr, access, nullptr},
    {{"COUNT(>0)", 2, 1, {kList, kList}, kInt}, count<isPositive>},
    {{"COUNT(<0)", 3, 1, {kList, kList}, kInt}, count<isNegative>},
    {{"COUNT(odd)", 4, 1, {kList, kList}, kInt}, count<isOdd>},
    {{"COUNT(even)", 5, 1, {kList, kList}, kInt}, count<isEven>},
    {{"HEAD", 6, 1, {kList, kList}, kInt}, head},
    {{"LAST", 7, 1, {kList, kList}, kInt}, last},
    {{"MINIMUM", 8, 1, {kList, kList}, kInt}, minimum},
    {{"MAXIMUM", 9, 1, {kList, kList}, kInt}, maximum},
    {{"SEARCH", 10, 2, {kInt, kList}, kInt}, nullptr, search, nullptr},
    {{"SUM", 11, 1, {kList, kList}, kInt}, sum},
    {{"DELETE", 12, 2, {kInt, kList}, kList}, nullptr, deleteAll, nullptr},
    {{"DROP", 13, 2, {kInt, kList}, kList}, nullptr, drop, nullptr},
    {{"FILTER(>0)", 14, 1, {kList, kList}, kList}, filter<isPositive>},
    {{"FILTER(<0)", 15, 1, {kList, kList}, kList}, filter<isNegative>},
    {{"FILTER(odd)", 16, 1, {kList, kList}, kList}, filter<isOdd>},
    {{"FILTER(even)", 17, 1, {kList, kList}, kList}, filter<isEven>},
    {{"INSERT", 18, 2, {kInt, kList}, kList}, nullptr, insert, nullptr},
    {{"MAP(+1)", 19, 1, {kList, kList}, kList}, map<mapAdd1>},
    {{"MAP(-1)", 20, 1, {kList, kList}, kList}, map<mapSub1>},
    {{"MAP(*2)", 21, 1, {kList, kList}, kList}, map<mapMul2>},
    {{"MAP(*3)", 22, 1, {kList, kList}, kList}, map<mapMul3>},
    {{"MAP(*4)", 23, 1, {kList, kList}, kList}, map<mapMul4>},
    {{"MAP(/2)", 24, 1, {kList, kList}, kList}, map<mapDiv2>},
    {{"MAP(/3)", 25, 1, {kList, kList}, kList}, map<mapDiv3>},
    {{"MAP(/4)", 26, 1, {kList, kList}, kList}, map<mapDiv4>},
    {{"MAP(*(-1))", 27, 1, {kList, kList}, kList}, map<mapNeg>},
    {{"MAP(^2)", 28, 1, {kList, kList}, kList}, map<mapSquare>},
    {{"REVERSE", 29, 1, {kList, kList}, kList}, reverse},
    {{"SCANL1(+)", 30, 1, {kList, kList}, kList}, scanl1<opAdd>},
    {{"SCANL1(-)", 31, 1, {kList, kList}, kList}, scanl1<opSub>},
    {{"SCANL1(*)", 32, 1, {kList, kList}, kList}, scanl1<opMul>},
    {{"SCANL1(min)", 33, 1, {kList, kList}, kList}, scanl1<opMin>},
    {{"SCANL1(max)", 34, 1, {kList, kList}, kList}, scanl1<opMax>},
    {{"SORT", 35, 1, {kList, kList}, kList}, sortAsc},
    {{"TAKE", 36, 2, {kInt, kList}, kList}, nullptr, take, nullptr},
    {{"ZIPWITH(+)", 37, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opAdd>},
    {{"ZIPWITH(-)", 38, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opSub>},
    {{"ZIPWITH(*)", 39, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMul>},
    {{"ZIPWITH(min)", 40, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMin>},
    {{"ZIPWITH(max)", 41, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMax>},
    // ---- str domain (strings as char-code lists) ----
    {{"STR.CONCAT", 0, 2, {kList, kList}, kList}, nullptr, nullptr,
     str::concat},
    {{"STR.UPPER", 0, 1, {kList, kList}, kList}, str::upper},
    {{"STR.LOWER", 0, 1, {kList, kList}, kList}, str::lower},
    {{"STR.TITLE", 0, 1, {kList, kList}, kList}, str::title},
    {{"STR.CAPITALIZE", 0, 1, {kList, kList}, kList}, str::capitalize},
    {{"STR.TRIM", 0, 1, {kList, kList}, kList}, str::trim},
    {{"STR.REVERSE", 0, 1, {kList, kList}, kList}, str::reverse},
    {{"STR.FIRSTWORD", 0, 1, {kList, kList}, kList}, str::firstWord},
    {{"STR.LASTWORD", 0, 1, {kList, kList}, kList}, str::lastWord},
    {{"STR.INITIALS", 0, 1, {kList, kList}, kList}, str::initials},
    {{"STR.SQUEEZE", 0, 1, {kList, kList}, kList}, str::squeeze},
    {{"STR.HYPHENATE", 0, 1, {kList, kList}, kList}, str::hyphenate},
    {{"STR.ALPHA", 0, 1, {kList, kList}, kList}, str::alphaOnly},
    {{"STR.DIGITS", 0, 1, {kList, kList}, kList}, str::digitsOnly},
    {{"STR.LEN", 0, 1, {kList, kList}, kInt}, str::strLen},
    {{"STR.WORDS", 0, 1, {kList, kList}, kInt}, str::wordCount},
    {{"STR.TAKE", 0, 2, {kInt, kList}, kList}, nullptr, str::strTake, nullptr},
    {{"STR.DROP", 0, 2, {kInt, kList}, kList}, nullptr, str::strDrop, nullptr},
    {{"STR.WORD", 0, 2, {kInt, kList}, kList}, nullptr, str::word, nullptr},
    {{"STR.CHARAT", 0, 2, {kInt, kList}, kInt}, nullptr, str::charAt, nullptr},
}};

}  // namespace

const FunctionInfo& functionInfo(FuncId id) {
  assert(id < kTotalFunctions);
  return kTable[id].info;
}

FunctionBody functionBody(FuncId id) {
  assert(id < kTotalFunctions);
  const Entry& e = kTable[id];
  return FunctionBody{e.unary, e.intList, e.listList};
}

void applyFunctionInto(FuncId id, std::span<const Value* const> args,
                       Value& out) {
  assert(id < kTotalFunctions);
  const Entry& e = kTable[id];
  if (args.size() != e.info.arity)
    throw std::invalid_argument("wrong arity for " + std::string(e.info.name));
  for (std::size_t i = 0; i < e.info.arity; ++i) {
    if (args[i]->type() != e.info.argTypes[i])
      throw std::invalid_argument("wrong argument type for " +
                                  std::string(e.info.name));
  }
  applyFunctionIntoUnchecked(id, args.data(), out);
}

void applyFunctionIntoUnchecked(FuncId id, const Value* const* args,
                                Value& out) {
  assert(id < kTotalFunctions);
  const Entry& e = kTable[id];
  assert(args[0] != nullptr && args[0]->type() == e.info.argTypes[0]);
  assert(e.info.arity < 2 ||
         (args[1] != nullptr && args[1]->type() == e.info.argTypes[1]));
  if (e.unary) {
    e.unary(args[0]->listUnchecked(), out);
  } else if (e.intList) {
    e.intList(args[0]->intUnchecked(), args[1]->listUnchecked(), out);
  } else {
    e.listList(args[0]->listUnchecked(), args[1]->listUnchecked(), out);
  }
}

Value applyFunction(FuncId id, std::span<const Value> args) {
  assert(id < kTotalFunctions);
  // Arity check before building the pointer span: a span of args.size()
  // over the kMaxArity-slot array would be ill-formed for oversized input.
  if (args.size() != kTable[id].info.arity)
    throw std::invalid_argument("wrong arity for " +
                                std::string(kTable[id].info.name));
  std::array<const Value*, kMaxArity> ptrs{};
  for (std::size_t i = 0; i < args.size(); ++i) ptrs[i] = &args[i];
  Value out;
  applyFunctionInto(id,
                    std::span<const Value* const>(ptrs.data(), args.size()),
                    out);
  return out;
}

std::optional<FuncId> functionByName(const std::string& name) {
  for (std::size_t i = 0; i < kTotalFunctions; ++i)
    if (name == kTable[i].info.name) return static_cast<FuncId>(i);
  return std::nullopt;
}

std::vector<FuncId> functionsReturning(Type t) {
  // Paper-Sigma scan only (see header): domain vocabularies own the str ops.
  std::vector<FuncId> out;
  for (std::size_t i = 0; i < kNumFunctions; ++i)
    if (kTable[i].info.returnType == t) out.push_back(static_cast<FuncId>(i));
  return out;
}

bool returnsInt(FuncId id) {
  return functionInfo(id).returnType == Type::Int;
}

}  // namespace netsyn::dsl
