// Dead code elimination (paper §4.2).
//
// A statement is dead when its output is never consumed by any live later
// statement and it is not the final statement (whose output is the program's
// output). Because argument resolution is purely type-driven (see
// interpreter.hpp), liveness is a static property of the function sequence
// and the input signature.
//
// NetSyn uses DCE in two places: the program generator requires candidates
// whose *effective* length equals the requested length, and the GA repeats
// crossover/mutation until the offspring has no dead code.
#pragma once

#include <vector>

#include "dsl/interpreter.hpp"
#include "dsl/program.hpp"

namespace netsyn::dsl {

/// liveness[k] == true iff statement k contributes to the program output.
std::vector<bool> liveMask(const Program& program, const InputSignature& sig);

/// Number of live statements.
std::size_t effectiveLength(const Program& program, const InputSignature& sig);

/// True when every statement is live (the GA's validity requirement).
bool isFullyLive(const Program& program, const InputSignature& sig);

/// Returns `program` with dead statements removed. Removing dead code never
/// changes the program's semantics: a dead statement is, by definition,
/// never the most-recent producer selected by any later statement, so the
/// remaining statements resolve to the same producers.
Program eliminateDeadCode(const Program& program, const InputSignature& sig);

}  // namespace netsyn::dsl
