// Program representation: a gene is a sequence of DSL function ids.
//
// The paper uses value encoding with a one-to-one match between genes and
// programs (§4.2): a program of length L is exactly the tuple
// (f_1, ..., f_L), f_i in Sigma_DSL. There are no variables; argument flow is
// resolved by the interpreter from types alone (see interpreter.hpp), so any
// function sequence is a valid program.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dsl/functions.hpp"

namespace netsyn::dsl {

/// Input signature of a program: the types of the arguments it is given.
/// The generators in this repo produce programs taking either {List} or
/// {List, Int} (the paper's examples use a single list input; int inputs
/// exercise the int,[int] signatures as first statements).
using InputSignature = std::vector<Type>;

/// A straight-line DSL program / GA gene.
class Program {
 public:
  Program() = default;
  explicit Program(std::vector<FuncId> functions)
      : functions_(std::move(functions)) {}

  std::size_t length() const { return functions_.size(); }
  bool empty() const { return functions_.empty(); }

  const std::vector<FuncId>& functions() const { return functions_; }
  std::vector<FuncId>& functions() { return functions_; }

  FuncId at(std::size_t i) const { return functions_.at(i); }
  void set(std::size_t i, FuncId f) { functions_.at(i) = f; }
  void append(FuncId f) { functions_.push_back(f); }

  /// Final output type: the return type of the last function. Programs with
  /// Int output are the paper's "singleton" programs. Precondition:
  /// non-empty.
  Type outputType() const;

  bool operator==(const Program&) const = default;

  /// "FILTER(>0) | MAP(*2) | SORT | REVERSE"
  std::string toString() const;

  /// Parses the toString() format; nullopt on any unknown function name.
  static std::optional<Program> fromString(const std::string& text);

  /// Stable 64-bit hash of the function sequence (for fitness caches and
  /// duplicate detection in the GA).
  std::uint64_t hash() const;

  /// Exact (collision-free) map key for the function sequence. Serializes
  /// every id with its full width, so it stays correct if FuncId ever grows
  /// beyond one byte (a raw reinterpret_cast of the id array would not).
  std::string idKey() const;

 private:
  std::vector<FuncId> functions_;
};

}  // namespace netsyn::dsl
