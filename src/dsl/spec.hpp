// Input-output specifications for inductive program synthesis.
//
// A specification S_t = {(I_j, O_j)}_{j=1..m} describes the behaviour of an
// unknown target program P_t (paper §3). A candidate P is *equivalent* to
// P_t under S_t iff P(I_j) == O_j for all j; synthesis succeeds when an
// equivalent program is found (Definition 3.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dsl/interpreter.hpp"
#include "dsl/program.hpp"
#include "dsl/value.hpp"

namespace netsyn::dsl {

/// One input-output example.
struct IOExample {
  std::vector<Value> inputs;
  Value output;
};

/// A full specification: m examples sharing one input signature.
struct Spec {
  std::vector<IOExample> examples;

  std::size_t size() const { return examples.size(); }

  /// Stable content fingerprint (FNV-1a over every example's values). Used
  /// as a cache-invalidation token by per-spec caches: unlike the spec's
  /// address, it cannot alias when an old spec is freed and a new one is
  /// allocated in its place.
  std::uint64_t fingerprint() const;

  /// Common input signature of the examples (empty spec -> empty signature).
  InputSignature signature() const {
    return examples.empty() ? InputSignature{}
                            : signatureOf(examples.front().inputs);
  }
};

/// Definition 3.1: P satisfies `spec` iff it maps every example input to the
/// example output. An empty spec is trivially satisfied.
bool satisfiesSpec(const Program& program, const Spec& spec);

}  // namespace netsyn::dsl
