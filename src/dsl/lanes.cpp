#include "dsl/lanes.hpp"

#include <algorithm>
#include <cstring>

#include "dsl/interpreter.hpp"

namespace netsyn::dsl {
namespace {

/// Per-lane scalar fallback for functions without a lane kernel (the
/// str-domain ops): materializes each lane's arguments into scratch Values,
/// runs the ordinary in-place body, and appends the result to the trace.
/// The scratch copies also decouple the arguments from the arena, which may
/// reallocate while the output grows lane by lane. `scratch` is
/// kMaxArity + 1 caller-owned Values (args + result) whose retained list
/// buffers make the loop allocation-free in steady state.
void applyLanesGeneric(const ExecStep& step, SoATrace& t, std::uint32_t a0,
                       std::uint32_t a1, std::uint32_t out, Value* scratch) {
  const FunctionInfo& info = functionInfo(step.fn);
  const std::uint32_t argSlots[kMaxArity] = {a0, a1};
  const Value* argPtrs[kMaxArity] = {};
  for (std::size_t j = 0; j < t.lanes; ++j) {
    for (std::size_t s = 0; s < info.arity; ++s) {
      const std::uint32_t slot = argSlots[s];
      if (info.argTypes[s] == Type::Int) {
        scratch[s].setInt(t.intBlock(slot)[j]);
      } else {
        const std::uint32_t o = t.offBlock(slot)[j];
        const std::uint32_t l = t.lenBlock(slot)[j];
        scratch[s].makeList().assign(t.arena.data() + o,
                                     t.arena.data() + o + l);
      }
      argPtrs[s] = &scratch[s];
    }
    Value& result = scratch[kMaxArity];
    applyFunctionIntoUnchecked(step.fn, argPtrs, result);
    if (info.returnType == Type::Int) {
      t.intBlock(out)[j] = result.intUnchecked();
    } else {
      const std::vector<std::int32_t>& list = result.listUnchecked();
      std::int32_t* dst = t.grow(list.size());
      copyLane(dst, list.data(), list.size());
      t.offBlock(out)[j] = static_cast<std::uint32_t>(t.used);
      t.lenBlock(out)[j] = static_cast<std::uint32_t>(list.size());
      t.used += list.size();
    }
  }
}

/// What executeLanesImpl materializes after each group executes: the full
/// per-example trace (the executePlanMultiLanes contract), only the final
/// statement's outputs (executePlanMultiLanesOutputs), or nothing at all —
/// the trace stays in SoA form for a LaneTraceView to read in place
/// (executePlanMultiLanesView).
enum class ScatterMode { FullTrace, OutputsOnly, None };

/// Shared lane-group driver. kMode selects the scatter phase; everything
/// else — ingest, pinning, kernel dispatch — is identical, so the three
/// entry points cannot drift apart.
template <ScatterMode kMode>
void executeLanesImpl(const ExecPlan& plan,
                      const std::vector<Value>* const* inputSets,
                      std::size_t count, ExecResult* outs, Value* outVals,
                      SoATrace& t, bool reuseIngest) {
  const std::size_t n = plan.steps.size();
  if constexpr (kMode == ScatterMode::FullTrace) {
    for (std::size_t j = 0; j < count; ++j) outs[j].trace.resize(n);
  } else if constexpr (kMode == ScatterMode::OutputsOnly) {
    if (n == 0) {
      // An empty program's output is the default list (scalar output()).
      for (std::size_t j = 0; j < count; ++j) outVals[j].makeList().clear();
    }
  }
  if (n == 0 || count == 0) return;
  const std::size_t numInputs = inputSets[0]->size();
  const std::uint32_t base =
      SoATrace::kFixedSlots + static_cast<std::uint32_t>(numInputs);
  const bool singleGroup = count <= SoATrace::kMaxLanes;
  Value scratch[kMaxArity + 1];

  for (std::size_t g = 0; g < count; g += SoATrace::kMaxLanes) {
    const std::size_t lanes = std::min(SoATrace::kMaxLanes, count - g);
    t.reset(lanes, base + n);

    // Ingest: transpose each program input into its lane block, unless a
    // pinned ingest of exactly these inputs is still valid (the per-spec
    // fast path — plans change per candidate, inputs don't). Input types
    // are uniform across a spec (one signature per plan), so example g
    // decides int vs list for the whole group.
    const bool canReuse = reuseIngest && singleGroup &&
                          t.pinKey == static_cast<const void*>(inputSets) &&
                          t.pinLanes == lanes && t.pinInputs == numInputs;
    if (!canReuse) {
      t.pinKey = nullptr;
      t.pinnedUsed = 0;
      t.used = 0;
      for (std::size_t i = 0; i < numInputs; ++i) {
        const std::uint32_t slot =
            SoATrace::kFixedSlots + static_cast<std::uint32_t>(i);
        if ((*inputSets[g])[i].type() == Type::Int) {
          std::int32_t* blk = t.intBlock(slot);
          for (std::size_t j = 0; j < lanes; ++j)
            blk[j] = (*inputSets[g + j])[i].intUnchecked();
        } else {
          std::size_t total = 0;
          for (std::size_t j = 0; j < lanes; ++j)
            total += (*inputSets[g + j])[i].listUnchecked().size();
          std::int32_t* dst = t.grow(total);
          std::uint32_t* ooff = t.offBlock(slot);
          std::uint32_t* olen = t.lenBlock(slot);
          std::uint32_t cursor = static_cast<std::uint32_t>(t.used);
          for (std::size_t j = 0; j < lanes; ++j) {
            const std::vector<std::int32_t>& xs =
                (*inputSets[g + j])[i].listUnchecked();
            copyLane(dst, xs.data(), xs.size());
            ooff[j] = cursor;
            olen[j] = static_cast<std::uint32_t>(xs.size());
            cursor += olen[j];
            dst += xs.size();
          }
          t.used = cursor;
        }
      }
      if (reuseIngest && singleGroup) {
        t.pinKey = inputSets;
        t.pinLanes = lanes;
        t.pinInputs = numInputs;
        t.pinnedUsed = t.used;
      }
    }

    // Execute statement-major over the whole lane group. Arg slot ids come
    // straight from the compiled sources; a Default source's payload index
    // (0 = Int, 1 = List) is by construction the default slot id.
    const auto slotOf = [base](const ArgSource& src) -> std::uint32_t {
      switch (src.kind) {
        case ArgSource::Kind::Statement:
          return base + src.index;
        case ArgSource::Kind::Input:
          return SoATrace::kFixedSlots + src.index;
        case ArgSource::Kind::Default:
          break;
      }
      return src.index;
    };
    for (std::size_t k = 0; k < n; ++k) {
      const ExecStep& step = plan.steps[k];
      const std::uint32_t a0 = slotOf(step.args[0]);
      const std::uint32_t a1 = slotOf(step.args[1]);
      const std::uint32_t outSlot = base + static_cast<std::uint32_t>(k);
      if (step.lane)
        step.lane(t, a0, a1, outSlot);
      else
        applyLanesGeneric(step, t, a0, a1, outSlot, scratch);
    }

    if constexpr (kMode == ScatterMode::FullTrace) {
      // Scatter: materialize the group's slots into the per-example traces,
      // refilling retained Value buffers — consumers see exactly the trace
      // the scalar path produces. Lane-outer: each example's trace Values
      // are contiguous and its retained list buffers were allocated
      // together, so walking one lane's statements in order is the
      // cache-friendly direction (the strided slot-table reads all sit in a
      // few lines).
      const std::int32_t* arena = t.arena.data();
      const std::int32_t* ints = t.ints.data();
      const std::uint32_t* off = t.off.data();
      const std::uint32_t* len = t.len.data();
      const ExecStep* steps = plan.steps.data();
      for (std::size_t j = 0; j < lanes; ++j) {
        Value* tr = outs[g + j].trace.data();
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t cell = (base + k) * lanes + j;
          if (steps[k].ret == Type::Int) {
            tr[k].setInt(ints[cell]);
          } else {
            const std::uint32_t o = off[cell];
            tr[k].makeList().assign(arena + o, arena + o + len[cell]);
          }
        }
      }
    } else if constexpr (kMode == ScatterMode::OutputsOnly) {
      // Output-only scatter: just the final statement's lane block — the
      // whole point of this variant. Equivalence checks never read the
      // intermediate trace, and skipping its materialization removes the
      // per-cell Value refills that dominate the full-trace path.
      const std::uint32_t last =
          base + static_cast<std::uint32_t>(n - 1);
      if (plan.steps[n - 1].ret == Type::Int) {
        const std::int32_t* blk = t.intBlock(last);
        for (std::size_t j = 0; j < lanes; ++j)
          outVals[g + j].setInt(blk[j]);
      } else {
        const std::uint32_t* o = t.offBlock(last);
        const std::uint32_t* l = t.lenBlock(last);
        const std::int32_t* a = t.arena.data();
        for (std::size_t j = 0; j < lanes; ++j)
          outVals[g + j].makeList().assign(a + o[j], a + o[j] + l[j]);
      }
    }
  }
}

}  // namespace

void executePlanMultiLanes(const ExecPlan& plan,
                           const std::vector<Value>* const* inputSets,
                           std::size_t count, ExecResult* outs, SoATrace& t,
                           bool reuseIngest) {
  executeLanesImpl<ScatterMode::FullTrace>(plan, inputSets, count, outs,
                                           nullptr, t, reuseIngest);
}

void executePlanMultiLanesOutputs(const ExecPlan& plan,
                                  const std::vector<Value>* const* inputSets,
                                  std::size_t count, Value* outs, SoATrace& t,
                                  bool reuseIngest) {
  executeLanesImpl<ScatterMode::OutputsOnly>(plan, inputSets, count, nullptr,
                                             outs, t, reuseIngest);
}

void executePlanMultiLanesView(const ExecPlan& plan,
                               const std::vector<Value>* const* inputSets,
                               std::size_t count, LaneTraceView& view,
                               SoATrace& t, bool reuseIngest) {
  executeLanesImpl<ScatterMode::None>(plan, inputSets, count, nullptr,
                                      nullptr, t, reuseIngest);
  view.trace = &t;
  view.plan = &plan;
  view.base = SoATrace::kFixedSlots +
              static_cast<std::uint32_t>(inputSets[0]->size());
  view.lanes = count;
  view.steps = plan.steps.size();
}

}  // namespace netsyn::dsl
