#include "dsl/program.hpp"

#include <stdexcept>

namespace netsyn::dsl {

Type Program::outputType() const {
  if (functions_.empty())
    throw std::logic_error("outputType() of an empty program");
  return functionInfo(functions_.back()).returnType;
}

std::string Program::toString() const {
  std::string out;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (i) out += " | ";
    out += functionInfo(functions_[i]).name;
  }
  return out;
}

std::optional<Program> Program::fromString(const std::string& text) {
  std::vector<FuncId> fns;
  std::size_t pos = 0;
  auto trim = [](std::string s) {
    const auto b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return std::string();
    const auto e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
  };
  while (pos <= text.size()) {
    const auto bar = text.find('|', pos);
    const std::string tok =
        trim(text.substr(pos, bar == std::string::npos ? std::string::npos
                                                       : bar - pos));
    if (!tok.empty()) {
      const auto id = functionByName(tok);
      if (!id) return std::nullopt;
      fns.push_back(*id);
    } else if (bar != std::string::npos) {
      return std::nullopt;  // empty segment between bars
    }
    if (bar == std::string::npos) break;
    pos = bar + 1;
  }
  return Program(std::move(fns));
}

std::string Program::idKey() const {
  std::string key;
  key.reserve(functions_.size() * sizeof(FuncId));
  for (FuncId f : functions_) {
    auto v = static_cast<std::uint64_t>(f);
    for (std::size_t b = 0; b < sizeof(FuncId); ++b) {
      key.push_back(static_cast<char>(v & 0xff));
      v >>= 8;
    }
  }
  return key;
}

std::uint64_t Program::hash() const {
  // FNV-1a over the function bytes; stable across runs and platforms.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (FuncId f : functions_) {
    h ^= f;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace netsyn::dsl
