#include "dsl/value.hpp"

#include <limits>

namespace netsyn::dsl {

std::string typeName(Type t) { return t == Type::Int ? "int" : "[int]"; }

std::int32_t saturate(std::int64_t v) {
  constexpr std::int64_t lo = std::numeric_limits<std::int32_t>::min();
  constexpr std::int64_t hi = std::numeric_limits<std::int32_t>::max();
  if (v < lo) return static_cast<std::int32_t>(lo);
  if (v > hi) return static_cast<std::int32_t>(hi);
  return static_cast<std::int32_t>(v);
}

Value Value::defaultFor(Type t) {
  if (t == Type::Int) return Value(std::int32_t{0});
  return Value(std::vector<std::int32_t>{});
}

std::string Value::toString() const {
  if (isInt()) return std::to_string(asInt());
  std::string out = "[";
  const auto& xs = asList();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(xs[i]);
  }
  out += "]";
  return out;
}

}  // namespace netsyn::dsl
