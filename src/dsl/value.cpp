#include "dsl/value.hpp"

namespace netsyn::dsl {

std::string typeName(Type t) { return t == Type::Int ? "int" : "[int]"; }

Value Value::defaultFor(Type t) {
  if (t == Type::Int) return Value(std::int32_t{0});
  return Value(std::vector<std::int32_t>{});
}

std::string Value::toString() const {
  if (isInt()) return std::to_string(asInt());
  std::string out = "[";
  const auto& xs = asList();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(xs[i]);
  }
  out += "]";
  return out;
}

}  // namespace netsyn::dsl
