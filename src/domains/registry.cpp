// Domain registry: resolves the dsl::Domain lookups declared in
// dsl/domain.hpp. Lives above the dsl layer so dsl headers never include
// domains/ — only this translation unit knows the concrete list. To register
// a new domain, add its src/domains/<name>/ pair and one entry here (see
// ARCHITECTURE.md "Adding a domain").
#include "dsl/domain.hpp"
#include "domains/list/list_domain.hpp"
#include "domains/strdsl/str_domain.hpp"

namespace netsyn::dsl {

const Domain& listDomain() { return domains::list::domain(); }
const Domain& strDomain() { return domains::strdsl::domain(); }

const std::vector<const Domain*>& allDomains() {
  static const std::vector<const Domain*> all = {&listDomain(), &strDomain()};
  return all;
}

const Domain* findDomain(std::string_view name) {
  for (const Domain* d : allDomains())
    if (d->name == name) return d;
  return nullptr;
}

}  // namespace netsyn::dsl
