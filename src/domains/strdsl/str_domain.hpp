// The string-manipulation domain ("str"): RobustFill/FlashFill-style text
// transformation as a second NetSyn workload.
//
// Strings are char-code lists (see str_ops.hpp), so the whole execution
// stack is shared with the list domain; this file contributes the Domain
// bundle: the STR.* vocabulary, a word-shaped text sampler for random
// inputs/specs, small-integer int-input ranges (counts and indices for
// STR.TAKE/DROP/WORD/CHARAT), and NN-encoder hints wide enough for ASCII
// (tokenVmax 128 covers char codes 32..126 without clamping).
#pragma once

#include "dsl/domain.hpp"

namespace netsyn::domains::strdsl {

const dsl::Domain& domain();

}  // namespace netsyn::domains::strdsl
