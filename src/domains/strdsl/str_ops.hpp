// Function bodies of the string-manipulation DSL (the "str" domain).
//
// Strings are dsl::Values of list type holding character codes, so the
// entire execution stack — Value's retained buffers, ExecPlan compilation,
// the statement-major executor, DCE — is shared with the list domain
// unchanged. Each body below matches one of the three FunctionBody shapes of
// dsl/functions.hpp and obeys the same contract as the Appendix-A bodies:
// total on any int32 content (non-ASCII codes pass through untouched), write
// the result into `out` in place, and never read an argument after the first
// write to `out`.
//
// This header is a leaf (it depends only on dsl/value.hpp): the global
// dispatch table in dsl/functions.cpp includes it to register these ops as
// FuncIds kNumFunctions..kTotalFunctions-1. Domain membership — which ops a
// search may use — lives in str_domain.cpp, not here.
//
// Word-oriented ops treat the space character (0x20) as the only separator;
// runs of spaces delimit empty-free word lists (leading/trailing spaces
// produce no empty words).
#pragma once

#include <cstdint>
#include <vector>

#include "dsl/value.hpp"

namespace netsyn::domains::strdsl {

using CharList = std::vector<std::int32_t>;

// ---- [str], [str] -> [str] --------------------------------------------------
void concat(const CharList& a, const CharList& b, dsl::Value& out);

// ---- [str] -> [str] ---------------------------------------------------------
void upper(const CharList& s, dsl::Value& out);       ///< a-z -> A-Z
void lower(const CharList& s, dsl::Value& out);       ///< A-Z -> a-z
void title(const CharList& s, dsl::Value& out);       ///< Each Word Like This
void capitalize(const CharList& s, dsl::Value& out);  ///< First char up, rest low
void trim(const CharList& s, dsl::Value& out);        ///< strip edge spaces
void reverse(const CharList& s, dsl::Value& out);
void firstWord(const CharList& s, dsl::Value& out);
void lastWord(const CharList& s, dsl::Value& out);
void initials(const CharList& s, dsl::Value& out);    ///< first char per word
void squeeze(const CharList& s, dsl::Value& out);     ///< collapse space runs
void hyphenate(const CharList& s, dsl::Value& out);   ///< ' ' -> '-'
void alphaOnly(const CharList& s, dsl::Value& out);   ///< keep letters
void digitsOnly(const CharList& s, dsl::Value& out);  ///< keep 0-9

// ---- [str] -> int -----------------------------------------------------------
void strLen(const CharList& s, dsl::Value& out);
void wordCount(const CharList& s, dsl::Value& out);

// ---- int, [str] -> [str] ----------------------------------------------------
void strTake(std::int32_t n, const CharList& s, dsl::Value& out);  ///< prefix
void strDrop(std::int32_t n, const CharList& s, dsl::Value& out);  ///< suffix
void word(std::int32_t n, const CharList& s, dsl::Value& out);     ///< n-th word ("" OOR)

// ---- int, [str] -> int ------------------------------------------------------
void charAt(std::int32_t n, const CharList& s, dsl::Value& out);  ///< 0 OOR

}  // namespace netsyn::domains::strdsl
