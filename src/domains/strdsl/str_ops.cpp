#include "domains/strdsl/str_ops.hpp"

#include <algorithm>

namespace netsyn::domains::strdsl {
namespace {

constexpr std::int32_t kSpace = ' ';

bool isLower(std::int32_t c) { return c >= 'a' && c <= 'z'; }
bool isUpper(std::int32_t c) { return c >= 'A' && c <= 'Z'; }
bool isAlpha(std::int32_t c) { return isLower(c) || isUpper(c); }
bool isDigit(std::int32_t c) { return c >= '0' && c <= '9'; }

std::int32_t toUpper(std::int32_t c) { return isLower(c) ? c - 32 : c; }
std::int32_t toLower(std::int32_t c) { return isUpper(c) ? c + 32 : c; }

/// Calls fn(first, last) for every maximal space-free run of `s`, in order.
template <typename Fn>
void forEachWord(const CharList& s, Fn&& fn) {
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && s[i] == kSpace) ++i;
    const std::size_t begin = i;
    while (i < s.size() && s[i] != kSpace) ++i;
    if (i > begin) fn(begin, i);
  }
}

template <bool (*Keep)(std::int32_t)>
void keepOnly(const CharList& s, dsl::Value& out) {
  // Branchless compaction, same pattern as the list domain's FILTER bodies.
  CharList& o = out.makeList();
  o.resize(s.size());
  std::size_t n = 0;
  for (std::int32_t c : s) {
    o[n] = c;
    n += Keep(c) ? 1 : 0;
  }
  o.resize(n);
}

template <std::int32_t (*CharMap)(std::int32_t)>
void mapChars(const CharList& s, dsl::Value& out) {
  CharList& o = out.makeList();
  o.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) o[i] = CharMap(s[i]);
}

}  // namespace

void concat(const CharList& a, const CharList& b, dsl::Value& out) {
  CharList& o = out.makeList();
  o.assign(a.begin(), a.end());
  o.insert(o.end(), b.begin(), b.end());
}

void upper(const CharList& s, dsl::Value& out) { mapChars<toUpper>(s, out); }
void lower(const CharList& s, dsl::Value& out) { mapChars<toLower>(s, out); }

void title(const CharList& s, dsl::Value& out) {
  CharList& o = out.makeList();
  o.resize(s.size());
  bool atWordStart = true;
  for (std::size_t i = 0; i < s.size(); ++i) {
    o[i] = atWordStart ? toUpper(s[i]) : toLower(s[i]);
    atWordStart = s[i] == kSpace;
  }
}

void capitalize(const CharList& s, dsl::Value& out) {
  CharList& o = out.makeList();
  o.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    o[i] = i == 0 ? toUpper(s[i]) : toLower(s[i]);
}

void trim(const CharList& s, dsl::Value& out) {
  std::size_t b = 0, e = s.size();
  while (b < e && s[b] == kSpace) ++b;
  while (e > b && s[e - 1] == kSpace) --e;
  out.makeList().assign(s.begin() + static_cast<std::ptrdiff_t>(b),
                        s.begin() + static_cast<std::ptrdiff_t>(e));
}

void reverse(const CharList& s, dsl::Value& out) {
  out.makeList().assign(s.rbegin(), s.rend());
}

void firstWord(const CharList& s, dsl::Value& out) {
  CharList& o = out.makeList();
  o.clear();
  forEachWord(s, [&](std::size_t b, std::size_t e) {
    if (o.empty()) o.assign(s.begin() + static_cast<std::ptrdiff_t>(b),
                            s.begin() + static_cast<std::ptrdiff_t>(e));
  });
}

void lastWord(const CharList& s, dsl::Value& out) {
  std::size_t wb = 0, we = 0;
  forEachWord(s, [&](std::size_t b, std::size_t e) { wb = b; we = e; });
  out.makeList().assign(s.begin() + static_cast<std::ptrdiff_t>(wb),
                        s.begin() + static_cast<std::ptrdiff_t>(we));
}

void initials(const CharList& s, dsl::Value& out) {
  CharList& o = out.makeList();
  o.clear();
  forEachWord(s, [&](std::size_t b, std::size_t) { o.push_back(s[b]); });
}

void squeeze(const CharList& s, dsl::Value& out) {
  CharList& o = out.makeList();
  o.resize(s.size());
  std::size_t n = 0;
  bool prevSpace = false;
  for (std::int32_t c : s) {
    const bool space = c == kSpace;
    o[n] = c;
    n += (space && prevSpace) ? 0 : 1;
    prevSpace = space;
  }
  o.resize(n);
}

void hyphenate(const CharList& s, dsl::Value& out) {
  CharList& o = out.makeList();
  o.resize(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    o[i] = s[i] == kSpace ? '-' : s[i];
}

void alphaOnly(const CharList& s, dsl::Value& out) { keepOnly<isAlpha>(s, out); }
void digitsOnly(const CharList& s, dsl::Value& out) { keepOnly<isDigit>(s, out); }

void strLen(const CharList& s, dsl::Value& out) {
  out.setInt(static_cast<std::int32_t>(s.size()));
}

void wordCount(const CharList& s, dsl::Value& out) {
  std::int32_t n = 0;
  forEachWord(s, [&](std::size_t, std::size_t) { ++n; });
  out.setInt(n);
}

void strTake(std::int32_t n, const CharList& s, dsl::Value& out) {
  const auto k = static_cast<std::size_t>(std::clamp<std::int64_t>(
      n, 0, static_cast<std::int64_t>(s.size())));
  out.makeList().assign(s.begin(), s.begin() + static_cast<std::ptrdiff_t>(k));
}

void strDrop(std::int32_t n, const CharList& s, dsl::Value& out) {
  const auto k = static_cast<std::size_t>(std::clamp<std::int64_t>(
      n, 0, static_cast<std::int64_t>(s.size())));
  out.makeList().assign(s.begin() + static_cast<std::ptrdiff_t>(k), s.end());
}

void word(std::int32_t n, const CharList& s, dsl::Value& out) {
  std::size_t wb = 0, we = 0;
  std::int32_t idx = 0;
  forEachWord(s, [&](std::size_t b, std::size_t e) {
    if (idx++ == n) { wb = b; we = e; }
  });
  out.makeList().assign(s.begin() + static_cast<std::ptrdiff_t>(wb),
                        s.begin() + static_cast<std::ptrdiff_t>(we));
}

void charAt(std::int32_t n, const CharList& s, dsl::Value& out) {
  if (n < 0 || static_cast<std::size_t>(n) >= s.size()) out.setInt(0);
  else out.setInt(s[static_cast<std::size_t>(n)]);
}

}  // namespace netsyn::domains::strdsl
