#include "domains/strdsl/str_domain.hpp"

#include "util/rng.hpp"

namespace netsyn::domains::strdsl {
namespace {

/// Word-shaped text sampler: 1-3 words of 2-6 chars separated by single
/// spaces; a word is lowercase letters (30% Capitalized) or, 15% of the
/// time, digits. Spec outputs stay informative for every STR.* op — case
/// ops see mixed case, word ops see multi-word strings, STR.DIGITS/ALPHA
/// see both character classes — unlike uniform char soup, on which half the
/// vocabulary would be a no-op or constant.
dsl::Value sampleText(const dsl::GeneratorConfig&, util::Rng& rng) {
  std::vector<std::int32_t> xs;
  const int words = 1 + static_cast<int>(rng.uniform(3));
  for (int w = 0; w < words; ++w) {
    if (w > 0) xs.push_back(' ');
    const bool digits = rng.bernoulli(0.15);
    const bool capitalized = !digits && rng.bernoulli(0.3);
    const int len = 2 + static_cast<int>(rng.uniform(5));
    for (int i = 0; i < len; ++i) {
      if (digits) {
        xs.push_back('0' + static_cast<std::int32_t>(rng.uniform(10)));
      } else if (i == 0 && capitalized) {
        xs.push_back('A' + static_cast<std::int32_t>(rng.uniform(26)));
      } else {
        xs.push_back('a' + static_cast<std::int32_t>(rng.uniform(26)));
      }
    }
  }
  return dsl::Value(std::move(xs));
}

}  // namespace

const dsl::Domain& domain() {
  static const dsl::Domain d = [] {
    dsl::Domain d;
    d.name = "str";
    d.summary = "string-manipulation DSL (strings as char-code lists)";
    d.vocabulary.reserve(dsl::kNumStrFunctions);
    for (std::size_t i = dsl::kNumFunctions; i < dsl::kTotalFunctions; ++i)
      d.vocabulary.push_back(static_cast<dsl::FuncId>(i));

    // The text sampler below fully owns the string shape (word counts,
    // word lengths, character classes), so the generic minValue/maxValue/
    // list-length knobs are deliberately left untouched — they are never
    // consulted while sampleListValue is set. Int inputs are the small
    // counts/indices STR.TAKE/DROP/WORD/CHARAT consume.
    d.generatorDefaults.useIntRange = true;
    d.generatorDefaults.intMinValue = 0;
    d.generatorDefaults.intMaxValue = 9;
    d.generatorDefaults.intInputProbability = 0.4;

    d.tokenVmax = 128;      // char codes embed unclamped
    d.maxValueTokens = 16;  // strings run longer than the paper's lists
    d.textual = true;
    d.sampleListValue = sampleText;
    d.finalize();
    return d;
  }();
  return d;
}

}  // namespace netsyn::domains::strdsl
