// The classic NetSyn list domain (paper Appendix A) packaged as a
// dsl::Domain. This is a pure re-description of the pre-domain defaults:
// vocabulary = the whole paper Sigma (FuncIds 0..kNumFunctions-1, so
// domain-local indices equal global FuncIds), generator knobs =
// GeneratorConfig{}, encoder hints = the EncoderConfig{} defaults, no
// custom hooks. test_domain_parity pins that searching through this Domain
// is bit-identical to the pre-domain engine.
#pragma once

#include "dsl/domain.hpp"

namespace netsyn::domains::list {

const dsl::Domain& domain();

}  // namespace netsyn::domains::list
