#include "domains/list/list_domain.hpp"

namespace netsyn::domains::list {

const dsl::Domain& domain() {
  static const dsl::Domain d = [] {
    dsl::Domain d;
    d.name = "list";
    d.summary = "integer/list DSL of the paper (Appendix A, 41 functions)";
    d.vocabulary.reserve(dsl::kNumFunctions);
    for (std::size_t i = 0; i < dsl::kNumFunctions; ++i)
      d.vocabulary.push_back(static_cast<dsl::FuncId>(i));
    // generatorDefaults / tokenVmax / maxValueTokens keep their struct
    // defaults: those *are* the list domain's historical settings.
    d.finalize();
    return d;
  }();
  return d;
}

}  // namespace netsyn::domains::list
