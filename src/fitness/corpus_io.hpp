// Binary (de)serialization of NN-FF training corpora.
//
// Generating a paper-scale corpus (4.2M programs, each executed on m inputs
// twice) is itself hours of compute; snapshotting the sample set lets
// training runs, hyper-parameter sweeps, and the Figure-7 benches share one
// corpus. Format: magic "NSCO", u32 version, u64 sample count, then each
// sample as length-prefixed programs, values, traces, and labels
// (little-endian).
#pragma once

#include <string>
#include <vector>

#include "fitness/dataset.hpp"

namespace netsyn::fitness {

/// Writes `samples` to `path`. Throws std::runtime_error on I/O failure.
void saveSamples(const std::vector<Sample>& samples, const std::string& path);

/// Reads a sample set written by saveSamples. Throws std::runtime_error on
/// I/O failure or malformed input. `domain` (nullptr = list) scopes the
/// rebuilt funcPresence vectors and validates that every stored program
/// stays inside the domain's vocabulary — loading a list corpus into a
/// str-domain trainer fails loudly instead of mis-indexing the FP head.
std::vector<Sample> loadSamples(const std::string& path,
                                const dsl::Domain* domain = nullptr);

}  // namespace netsyn::fitness
