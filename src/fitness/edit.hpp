// Output edit-distance fitness: the hand-crafted baseline the paper argues
// is misleading for machine programming ("a program having only a single
// mistake may produce output that in no obvious way resembles the correct
// output", §1).
//
// The grade is 1 / (1 + mean Levenshtein distance between the candidate's
// outputs and the specified outputs), so it is positive (usable as a
// Roulette Wheel weight) and increases as outputs get closer.
#pragma once

#include "fitness/fitness.hpp"

namespace netsyn::fitness {

/// Levenshtein distance between two DSL values, token-wise: lists compare
/// element sequences; ints compare as single-token sequences; comparing an
/// int against a list treats the int as a one-element sequence.
std::size_t valueEditDistance(const dsl::Value& a, const dsl::Value& b);

class EditDistanceFitness final : public FitnessFunction {
 public:
  double score(const dsl::Program& gene, const EvalContext& ctx) override;
  double maxScore(std::size_t) const override { return 1.0; }
  std::string name() const override { return "Edit"; }
};

}  // namespace netsyn::fitness
