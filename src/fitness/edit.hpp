// Output edit-distance fitness: the hand-crafted baseline the paper argues
// is misleading for machine programming ("a program having only a single
// mistake may produce output that in no obvious way resembles the correct
// output", §1).
//
// The grade is 1 / (1 + mean Levenshtein distance between the candidate's
// outputs and the specified outputs), so it is positive (usable as a
// Roulette Wheel weight) and increases as outputs get closer.
#pragma once

#include "dsl/domain.hpp"
#include "fitness/fitness.hpp"

namespace netsyn::fitness {

/// Levenshtein distance between two DSL values, token-wise: lists compare
/// element sequences; ints compare as single-token sequences; comparing an
/// int against a list treats the int as a one-element sequence. On the str
/// domain's char-code lists this *is* classic string edit distance, which is
/// why both shipped domains use it as their output metric.
std::size_t valueEditDistance(const dsl::Value& a, const dsl::Value& b);

/// The same Levenshtein core over raw token spans. `valueEditDistance` is a
/// thin wrapper over this; the lane-view trace encoder calls it directly on
/// SoA arena segments so no `Value` is materialized on the hot path.
std::size_t editDistanceSpans(const std::int32_t* xs, std::size_t n,
                              const std::int32_t* ys, std::size_t m);

class EditDistanceFitness final : public FitnessFunction {
 public:
  /// Grades with the domain's output metric (Domain::editDistance; nullptr
  /// domain or hook falls back to the shared token-level Levenshtein).
  explicit EditDistanceFitness(const dsl::Domain* domain = nullptr)
      : dist_(dsl::resolveDomain(domain).editDistance
                  ? dsl::resolveDomain(domain).editDistance
                  : &valueEditDistance) {}

  double score(const dsl::Program& gene, const EvalContext& ctx) override;
  double maxScore(std::size_t) const override { return 1.0; }
  std::string name() const override { return "Edit"; }

 private:
  std::size_t (*dist_)(const dsl::Value&, const dsl::Value&);
};

}  // namespace netsyn::fitness
