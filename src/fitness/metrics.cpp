#include "fitness/metrics.hpp"

#include <algorithm>
#include <array>

namespace netsyn::fitness {

std::size_t commonFunctions(const dsl::Program& a, const dsl::Program& b) {
  // Counters span the whole table so str-domain programs index in range.
  std::array<std::size_t, dsl::kTotalFunctions> ca{}, cb{};
  for (dsl::FuncId f : a.functions()) ++ca[f];
  for (dsl::FuncId f : b.functions()) ++cb[f];
  std::size_t common = 0;
  for (std::size_t i = 0; i < dsl::kTotalFunctions; ++i)
    common += std::min(ca[i], cb[i]);
  return common;
}

std::size_t longestCommonSubsequence(const dsl::Program& a,
                                     const dsl::Program& b) {
  const auto& xs = a.functions();
  const auto& ys = b.functions();
  const std::size_t n = xs.size(), m = ys.size();
  if (n == 0 || m == 0) return 0;
  // Rolling single-row DP.
  std::vector<std::size_t> prev(m + 1, 0), curr(m + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      curr[j] = (xs[i - 1] == ys[j - 1]) ? prev[j - 1] + 1
                                         : std::max(prev[j], curr[j - 1]);
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

std::size_t longestCommonSubstring(const dsl::Program& a,
                                   const dsl::Program& b) {
  const auto& xs = a.functions();
  const auto& ys = b.functions();
  const std::size_t n = xs.size(), m = ys.size();
  if (n == 0 || m == 0) return 0;
  std::vector<std::size_t> prev(m + 1, 0), curr(m + 1, 0);
  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      curr[j] = (xs[i - 1] == ys[j - 1]) ? prev[j - 1] + 1 : 0;
      best = std::max(best, curr[j]);
    }
    std::swap(prev, curr);
  }
  return best;
}

}  // namespace netsyn::fitness
