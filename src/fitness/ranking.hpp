// §5.3.1 relative-ordering ablation: train a network to *order* genes
// instead of scoring them.
//
// The paper: "the ultimate goal of the fitness score is to provide an order
// among genes for the Roulette Wheel algorithm... we attempted to have the
// neural network predict this ordering directly. However, we were not able
// to train a network to predict this relative ordering whose accuracy was
// higher than the one for absolute fitness scores."
//
// We implement the natural formulation (RankNet): the Regression-head model
// produces a scalar score s(g); a pair (a, b) graded against the same spec
// is trained with BCE(sigmoid(s_a - s_b), [metric_a > metric_b]). The
// trained model plugs into the GA through RegressionFitness.
#pragma once

#include <functional>
#include <vector>

#include "fitness/dataset.hpp"
#include "fitness/model.hpp"

namespace netsyn::fitness {

struct RankTrainConfig {
  std::size_t epochs = 4;
  std::size_t batchSize = 8;
  float learningRate = 1e-2f;
  float gradClip = 5.0f;
  std::uint64_t shuffleSeed = 7;
};

struct RankEpochStats {
  std::size_t epoch = 0;
  double trainLoss = 0.0;
  double valPairAccuracy = 0.0;  ///< fraction of val pairs ordered correctly
};

class RankTrainer {
 public:
  explicit RankTrainer(RankTrainConfig config = {}) : config_(config) {}

  const RankTrainConfig& config() const { return config_; }

  /// Trains `model` (Regression head required) on ordered pairs; returns
  /// per-epoch statistics.
  std::vector<RankEpochStats> train(
      NnffModel& model, const std::vector<PairSample>& trainSet,
      const std::vector<PairSample>& valSet,
      const std::function<void(const RankEpochStats&)>& onEpoch = {}) const;

  /// Fraction of pairs whose predicted score ordering matches the oracle
  /// metric ordering (fast inference path).
  static double pairAccuracy(const NnffModel& model,
                             const std::vector<PairSample>& set);

 private:
  RankTrainConfig config_;
};

}  // namespace netsyn::fitness
