// Learned fitness functions: the NN-FF wrappers the genetic algorithm calls.
//
// NeuralFitness wraps a Classifier-head model (f_CF or f_LCS): the gene's
// grade is the expectation of the predicted class distribution (a smoother
// ranking signal than argmax for the Roulette Wheel).
//
// ProbMapFitness wraps the Multilabel (FP) model: the probability map
// p = (p_1..p_|Sigma|) depends only on the spec, so it is computed once and
// cached; a gene's grade is sum of p_k over its functions (paper §4.2.1).
// The same map drives the FP-guided mutation operator and the
// DeepCoder-style baseline, via the ProbMapProvider interface.
//
// RegressionFitness wraps the Regression-head ablation model (§5.3.1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dsl/domain.hpp"
#include "fitness/fitness.hpp"
#include "fitness/model.hpp"

namespace netsyn::fitness {

/// Anything that can produce Prob(op in P_t | spec) for every op of one
/// domain's vocabulary. The map is indexed by *domain-local* function index
/// (vocabulary order; equal to global FuncId for the list domain) and has
/// exactly domain().vocabSize() entries — consumers translate through
/// domain().vocabulary / localIndex().
class ProbMapProvider {
 public:
  virtual ~ProbMapProvider() = default;
  virtual std::vector<double> probMap(const dsl::Spec& spec) = 0;
  /// The domain whose vocabulary the map ranges over.
  virtual const dsl::Domain& domain() const { return dsl::listDomain(); }
};

/// LaneTraceSink that encodes views straight into NN-ready features via
/// NnffModel::encodeLaneTrace. Slots are preallocated in beginCapture so
/// at(slot) references stay stable while the generation is graded.
class ModelLaneSink final : public LaneTraceSink {
 public:
  explicit ModelLaneSink(const NnffModel* model) : model_(model) {}

  void beginCapture(const dsl::Spec& spec, std::size_t count) override {
    model_->beginLaneCapture(spec);
    spec_ = &spec;
    if (slots_.size() < count) slots_.resize(count);
  }

  void capture(std::size_t slot, const dsl::Program& candidate,
               const dsl::LaneTraceView& view) override {
    model_->encodeLaneTrace(*spec_, candidate, view, slots_[slot]);
  }

  const EncodedTrace& at(std::size_t slot) const override {
    return slots_[slot];
  }

 private:
  const NnffModel* model_;
  const dsl::Spec* spec_ = nullptr;
  std::vector<EncodedTrace> slots_;
};

/// f_CF / f_LCS: expectation of the classifier's predicted fitness class.
class NeuralFitness final : public FitnessFunction {
 public:
  NeuralFitness(std::shared_ptr<NnffModel> model, std::string name);

  double score(const dsl::Program& gene, const EvalContext& ctx) override;
  /// One batched forward over the whole population (NnffModel::predictBatch).
  std::vector<double> scoreBatch(
      const std::vector<const dsl::Program*>& genes,
      const std::vector<const EvalContext*>& contexts) override;
  double maxScore(std::size_t) const override {
    return static_cast<double>(model_->config().numClasses - 1);
  }
  std::string name() const override { return name_; }

  /// Lane-view grading is available whenever the model reads traces.
  LaneTraceSink* laneSink() override {
    return model_->config().useTrace ? &sink_ : nullptr;
  }

  /// Full predicted class distribution (used by tests and diagnostics).
  std::vector<double> classProbabilities(const dsl::Program& gene,
                                         const EvalContext& ctx) const;

 private:
  std::shared_ptr<NnffModel> model_;
  std::string name_;
  ModelLaneSink sink_{nullptr};
};

/// f_FP: sum of learned per-function probabilities over the gene. The map's
/// width and indexing follow the FP model's domain (NnffConfig::domain).
class ProbMapFitness final : public FitnessFunction, public ProbMapProvider {
 public:
  explicit ProbMapFitness(std::shared_ptr<NnffModel> fpModel);

  double score(const dsl::Program& gene, const EvalContext& ctx) override;
  /// Computes (or fetches) the per-spec map once for the whole population
  /// instead of once per gene.
  std::vector<double> scoreBatch(
      const std::vector<const dsl::Program*>& genes,
      const std::vector<const EvalContext*>& contexts) override;
  double maxScore(std::size_t targetLength) const override {
    return static_cast<double>(targetLength);  // all probabilities <= 1
  }
  std::string name() const override { return "NN_FP"; }

  /// Cached per-spec probability map (domain-local order). Invalidation is
  /// by content fingerprint, not by address: a different spec allocated
  /// where the old one lived must not return a stale map.
  std::vector<double> probMap(const dsl::Spec& spec) override;

  const dsl::Domain& domain() const override { return *domain_; }

 private:
  std::shared_ptr<NnffModel> model_;
  const dsl::Domain* domain_;  ///< resolved from the model's config
  bool hasCachedMap_ = false;
  std::uint64_t cachedFingerprint_ = 0;
  std::vector<double> cachedMap_;
};

/// §5.3.1 ablation: raw scalar prediction as fitness (clamped to >= 0 so it
/// remains a valid Roulette Wheel weight).
class RegressionFitness final : public FitnessFunction {
 public:
  explicit RegressionFitness(std::shared_ptr<NnffModel> model);

  double score(const dsl::Program& gene, const EvalContext& ctx) override;
  std::vector<double> scoreBatch(
      const std::vector<const dsl::Program*>& genes,
      const std::vector<const EvalContext*>& contexts) override;
  double maxScore(std::size_t targetLength) const override {
    return static_cast<double>(targetLength);
  }
  std::string name() const override { return "NN_Regression"; }

  LaneTraceSink* laneSink() override {
    return model_->config().useTrace ? &sink_ : nullptr;
  }

 private:
  std::shared_ptr<NnffModel> model_;
  ModelLaneSink sink_{nullptr};
};

}  // namespace netsyn::fitness
