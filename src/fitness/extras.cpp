#include "fitness/extras.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netsyn::fitness {
namespace {

std::vector<std::vector<dsl::Value>> tracesFromRuns(
    const std::vector<dsl::ExecResult>& runs) {
  std::vector<std::vector<dsl::Value>> traces;
  traces.reserve(runs.size());
  for (const auto& r : runs) traces.push_back(r.trace);
  return traces;
}

std::vector<double> softmaxOf(const std::vector<float>& logits) {
  const float mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double sum = 0.0;
  for (std::size_t j = 0; j < logits.size(); ++j) {
    probs[j] = std::exp(static_cast<double>(logits[j] - mx));
    sum += probs[j];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

}  // namespace

std::vector<float> bigramTargets(const dsl::Program& program) {
  std::vector<float> targets(kBigramDim, 0.0f);
  for (std::size_t k = 0; k + 1 < program.length(); ++k) {
    const auto a = static_cast<std::size_t>(program.at(k));
    const auto b = static_cast<std::size_t>(program.at(k + 1));
    targets[a * dsl::kNumFunctions + b] = 1.0f;
  }
  return targets;
}

TwoTierFitness::TwoTierFitness(std::shared_ptr<NnffModel> gate,
                               std::shared_ptr<NnffModel> value)
    : gate_(std::move(gate)), value_(std::move(value)) {
  if (gate_->config().head != HeadKind::Classifier ||
      gate_->config().numClasses != 2)
    throw std::invalid_argument(
        "TwoTierFitness gate must be a 2-class Classifier");
  if (value_->config().head != HeadKind::Classifier)
    throw std::invalid_argument(
        "TwoTierFitness value model must be a Classifier");
}

double TwoTierFitness::gateProbability(const dsl::Program& gene,
                                       const EvalContext& ctx) const {
  const auto logits =
      gate_->forwardFast(ctx.spec, gene, tracesFromRuns(ctx.runs));
  return softmaxOf(logits)[1];  // class 1 = "fitness is non-zero"
}

double TwoTierFitness::score(const dsl::Program& gene,
                             const EvalContext& ctx) {
  if (gateProbability(gene, ctx) < 0.5) return 0.0;
  const auto logits =
      value_->forwardFast(ctx.spec, gene, tracesFromRuns(ctx.runs));
  const auto probs = softmaxOf(logits);
  double expectation = 0.0;
  for (std::size_t j = 0; j < probs.size(); ++j)
    expectation += static_cast<double>(j) * probs[j];
  return expectation;
}

BigramFitness::BigramFitness(std::shared_ptr<NnffModel> bigramModel)
    : model_(std::move(bigramModel)) {
  if (model_->config().head != HeadKind::Multilabel ||
      model_->config().useTrace || model_->outDim() != kBigramDim)
    throw std::invalid_argument(
        "BigramFitness requires an IO-only Multilabel model with 41^2 "
        "outputs");
}

const std::vector<double>& BigramFitness::pairMap(const dsl::Spec& spec) {
  if (cachedSpec_ == &spec) return cachedMap_;
  const auto logits = model_->forwardIOOnlyFast(spec);
  cachedMap_.resize(kBigramDim);
  for (std::size_t j = 0; j < kBigramDim; ++j) {
    cachedMap_[j] =
        1.0 / (1.0 + std::exp(-static_cast<double>(logits[j])));
  }
  cachedSpec_ = &spec;
  return cachedMap_;
}

double BigramFitness::score(const dsl::Program& gene,
                            const EvalContext& ctx) {
  const auto& map = pairMap(ctx.spec);
  double total = 0.0;
  for (std::size_t k = 0; k + 1 < gene.length(); ++k) {
    const auto a = static_cast<std::size_t>(gene.at(k));
    const auto b = static_cast<std::size_t>(gene.at(k + 1));
    total += map[a * dsl::kNumFunctions + b];
  }
  return total;
}

}  // namespace netsyn::fitness
