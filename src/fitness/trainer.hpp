// Training and evaluation loops for the NN-FF models.
//
// Supervision depends on the model head:
//   Classifier -> cross-entropy against the (clamped) CF or LCS label,
//   Multilabel -> binary cross-entropy against the target's 41-way
//                 function-presence vector (the FP probability map),
//   Regression -> squared error against the raw metric value (§5.3.1
//                 ablation).
// Evaluation produces the artifacts of Figure 7: confusion matrices for the
// classifiers and thresholded per-function accuracy for the FP model.
#pragma once

#include <functional>
#include <vector>

#include "fitness/dataset.hpp"
#include "fitness/model.hpp"
#include "util/stats.hpp"

namespace netsyn::fitness {

/// How the oracle metric maps onto classifier labels.
enum class LabelTransform : std::uint8_t {
  Identity,       ///< label = metric value, clamped to numClasses-1
  ZeroVsNonzero,  ///< label = (metric == 0 ? 0 : 1), the §5.3.1 gate tier
};

struct TrainConfig {
  std::size_t epochs = 5;
  std::size_t batchSize = 8;
  float learningRate = 1e-3f;  ///< Adam
  float gradClip = 5.0f;       ///< global-norm clip; <= 0 disables
  BalanceMetric labelMetric = BalanceMetric::CF;  ///< classifier/regression
  LabelTransform labelTransform = LabelTransform::Identity;
  std::uint64_t shuffleSeed = 7;
};

struct EpochStats {
  std::size_t epoch = 0;
  double trainLoss = 0.0;
  double valLoss = 0.0;
  double valAccuracy = 0.0;  ///< head-appropriate accuracy (see trainer.cpp)
};

class Trainer {
 public:
  explicit Trainer(TrainConfig config = {}) : config_(config) {}

  const TrainConfig& config() const { return config_; }

  /// Trains `model` in place; returns per-epoch statistics. `onEpoch` (if
  /// set) observes each epoch's stats (used by the Figure 7c bench).
  std::vector<EpochStats> train(
      NnffModel& model, const std::vector<Sample>& trainSet,
      const std::vector<Sample>& valSet,
      const std::function<void(const EpochStats&)>& onEpoch = {}) const;

  /// Supervised label of `sample` for this trainer's metric, clamped to the
  /// classifier range.
  std::size_t classLabel(const NnffModel& model, const Sample& sample) const;

  /// Loss of one sample under the model's head (builds a graph when not in
  /// inference mode).
  nn::Var sampleLoss(const NnffModel& model, const Sample& sample) const;

  /// Mean loss + accuracy on a dataset (inference mode).
  std::pair<double, double> evaluate(const NnffModel& model,
                                     const std::vector<Sample>& set) const;

  /// Row-normalizable confusion matrix over the classifier's classes
  /// (Figure 7a-b). Requires a Classifier head.
  util::ConfusionMatrix confusion(const NnffModel& model,
                                  const std::vector<Sample>& set) const;

  /// FP accuracy per the paper: a function's probability is "correct" when
  /// (p >= 0.5) matches its presence in the target. Averaged over all
  /// (sample, function) pairs. Requires a Multilabel head.
  static double multilabelAccuracy(const NnffModel& model,
                                   const std::vector<Sample>& set);

  /// Mean absolute prediction error of a Regression head (for the §5.3.1
  /// comparison against classification).
  double regressionMae(const NnffModel& model,
                       const std::vector<Sample>& set) const;

 private:
  TrainConfig config_;
};

}  // namespace netsyn::fitness
