#include "fitness/encoding.hpp"

#include <algorithm>
#include <map>

namespace netsyn::fitness {

std::size_t TokenEncoder::tokenOf(std::int32_t v) const {
  const std::int32_t clamped =
      std::clamp(v, -config_.vmax, config_.vmax - 1);
  return static_cast<std::size_t>(clamped + config_.vmax);
}

std::vector<std::size_t> TokenEncoder::encodeValue(const dsl::Value& v) const {
  std::vector<std::size_t> out;
  if (v.isInt()) {
    encodeIntInto(v.asInt(), out);
  } else {
    const auto& xs = v.asList();
    encodeListInto(xs.data(), xs.size(), out);
  }
  return out;
}

void TokenEncoder::encodeIntInto(std::int32_t v,
                                 std::vector<std::size_t>& out) const {
  out.clear();
  out.reserve(2);
  out.push_back(intMarker());
  out.push_back(tokenOf(v));
}

void TokenEncoder::encodeListInto(const std::int32_t* xs, std::size_t n,
                                  std::vector<std::size_t>& out) const {
  out.clear();
  const std::size_t take = std::min(n, config_.maxValueTokens);
  out.reserve(take + 1);
  out.push_back(listMarker());
  for (std::size_t i = 0; i < take; ++i) out.push_back(tokenOf(xs[i]));
}

std::vector<std::size_t> TokenEncoder::encodeInputs(
    const std::vector<dsl::Value>& inputs) const {
  std::vector<std::size_t> out;
  for (const auto& v : inputs) {
    const auto toks = encodeValue(v);
    out.insert(out.end(), toks.begin(), toks.end());
  }
  return out;
}

std::array<float, kIoFeatureDim> ioSummaryFeatures(
    const std::vector<dsl::Value>& inputs, const dsl::Value& output) {
  std::array<float, kIoFeatureDim> f{};
  // First list input (programs in this repo always take one).
  static const std::vector<std::int32_t> kEmpty;
  const std::vector<std::int32_t>* in = &kEmpty;
  for (const auto& v : inputs) {
    if (v.isList()) {
      in = &v.asList();
      break;
    }
  }
  const auto& xs = *in;
  const bool outList = output.isList();
  const auto& os = outList ? output.asList() : kEmpty;
  const auto lenI = static_cast<float>(xs.size());
  const auto lenO = static_cast<float>(os.size());

  std::size_t k = 0;
  f[k++] = outList ? 1.0f : 0.0f;                       // 0: output type
  f[k++] = outList ? lenO / (lenI + 1.0f) : 0.0f;       // 1: length ratio
  f[k++] = (outList && os.size() >= 2 &&
            std::is_sorted(os.begin(), os.end()))
               ? 1.0f
               : 0.0f;                                  // 2: sorted
  f[k++] = (outList && os.size() >= 2 &&
            std::is_sorted(os.rbegin(), os.rend()))
               ? 1.0f
               : 0.0f;                                  // 3: reverse sorted
  // 4: output is a sub-multiset of the input (FILTER/TAKE/DROP/DELETE...).
  {
    std::map<std::int32_t, int> counts;
    for (auto v : xs) ++counts[v];
    bool subset = outList;
    for (auto v : os) {
      if (--counts[v] < 0) {
        subset = false;
        break;
      }
    }
    f[k++] = subset ? 1.0f : 0.0f;
  }
  // 5-8: sign/parity fractions of the output elements.
  if (outList && !os.empty()) {
    float pos = 0, neg = 0, even = 0, odd = 0;
    for (auto v : os) {
      pos += v > 0 ? 1.0f : 0.0f;
      neg += v < 0 ? 1.0f : 0.0f;
      even += v % 2 == 0 ? 1.0f : 0.0f;
      odd += v % 2 != 0 ? 1.0f : 0.0f;
    }
    f[k++] = pos / lenO;
    f[k++] = neg / lenO;
    f[k++] = even / lenO;
    f[k++] = odd / lenO;
  } else {
    k += 4;
  }
  // 9-10: equality against single-function prototypes.
  {
    auto sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    f[k++] = (outList && os == sorted) ? 1.0f : 0.0f;
    const std::vector<std::int32_t> reversed(xs.rbegin(), xs.rend());
    f[k++] = (outList && os == reversed) ? 1.0f : 0.0f;
  }
  // 11-13: divisibility of every output element (MAP *2/*3/*4 traces).
  for (std::int32_t d : {2, 3, 4}) {
    bool all = outList && !os.empty();
    for (auto v : os) all = all && (v % d == 0);
    f[k++] = all ? 1.0f : 0.0f;
  }
  // 14-15: extrema preserved.
  if (outList && !os.empty() && !xs.empty()) {
    f[k++] = (*std::max_element(os.begin(), os.end()) ==
              *std::max_element(xs.begin(), xs.end()))
                 ? 1.0f
                 : 0.0f;
    f[k++] = (*std::min_element(os.begin(), os.end()) ==
              *std::min_element(xs.begin(), xs.end()))
                 ? 1.0f
                 : 0.0f;
  } else {
    k += 2;
  }
  // 16: fraction of output elements present in the input.
  if (outList && !os.empty()) {
    float present = 0;
    for (auto v : os)
      present += std::find(xs.begin(), xs.end(), v) != xs.end() ? 1.0f : 0.0f;
    f[k++] = present / lenO;
  } else {
    ++k;
  }
  f[k++] = (outList && os.size() == xs.size()) ? 1.0f : 0.0f;  // 17
  // 18-21: singleton-output prototypes (SUM / MAX / MIN / HEAD or LAST).
  if (!outList && !xs.empty()) {
    const std::int64_t o = output.asInt();
    std::int64_t sum = 0;
    for (auto v : xs) sum += v;
    f[k++] = (o == sum) ? 1.0f : 0.0f;
    f[k++] = (o == *std::max_element(xs.begin(), xs.end())) ? 1.0f : 0.0f;
    f[k++] = (o == *std::min_element(xs.begin(), xs.end())) ? 1.0f : 0.0f;
    f[k++] = (o == xs.front() || o == xs.back()) ? 1.0f : 0.0f;
  } else {
    k += 4;
  }
  return f;
}

}  // namespace netsyn::fitness
