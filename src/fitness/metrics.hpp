// Program-closeness metrics and the oracle fitness functions built on them.
//
// CF  = size of the multiset intersection of the two function sequences
//       (paper: f^CF_Pt(z) = |elems(Pz) n elems(Pt)|).
// LCS = length of the longest common subsequence of the two sequences.
// The paper's worked example (§4.2.1) reports LCS=2 for a pair whose
// standard LCS is 3; that value matches the longest common *substring*, so
// we provide both and use the standard subsequence definition for fLCS
// (the discrepancy is documented in EXPERIMENTS.md).
//
// The oracle fitness functions compare a gene against the known target
// program. They are "impossible in practice" (the target is unknown) but
// serve two roles: they label the NN-FF training corpus, and they give the
// paper's Oracle upper-bound baseline.
#pragma once

#include "fitness/fitness.hpp"

namespace netsyn::fitness {

/// Multiset common-function count. Symmetric; 0 <= CF <= min(|a|, |b|).
std::size_t commonFunctions(const dsl::Program& a, const dsl::Program& b);

/// Longest common subsequence length (classic O(n*m) DP).
std::size_t longestCommonSubsequence(const dsl::Program& a,
                                     const dsl::Program& b);

/// Longest common contiguous substring length (for reference / ablation).
std::size_t longestCommonSubstring(const dsl::Program& a,
                                   const dsl::Program& b);

/// Oracle fitness using CF against a known target.
class OracleCF final : public FitnessFunction {
 public:
  explicit OracleCF(dsl::Program target) : target_(std::move(target)) {}

  double score(const dsl::Program& gene, const EvalContext&) override {
    return static_cast<double>(commonFunctions(gene, target_));
  }
  double maxScore(std::size_t targetLength) const override {
    return static_cast<double>(targetLength);
  }
  std::string name() const override { return "Oracle_CF"; }

 private:
  dsl::Program target_;
};

/// Oracle fitness using LCS against a known target.
class OracleLCS final : public FitnessFunction {
 public:
  explicit OracleLCS(dsl::Program target) : target_(std::move(target)) {}

  double score(const dsl::Program& gene, const EvalContext&) override {
    return static_cast<double>(longestCommonSubsequence(gene, target_));
  }
  double maxScore(std::size_t targetLength) const override {
    return static_cast<double>(targetLength);
  }
  std::string name() const override { return "Oracle_LCS"; }

 private:
  dsl::Program target_;
};

}  // namespace netsyn::fitness
