#include "fitness/ranking.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/optim.hpp"

namespace netsyn::fitness {

std::vector<RankEpochStats> RankTrainer::train(
    NnffModel& model, const std::vector<PairSample>& trainSet,
    const std::vector<PairSample>& valSet,
    const std::function<void(const RankEpochStats&)>& onEpoch) const {
  if (model.config().head != HeadKind::Regression)
    throw std::invalid_argument("RankTrainer requires a Regression head");
  if (trainSet.empty()) throw std::invalid_argument("empty pair set");

  nn::Adam opt(model.params(), config_.learningRate);
  util::Rng shuffler(config_.shuffleSeed);
  std::vector<std::size_t> order(trainSet.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<RankEpochStats> history;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffler.shuffle(order);
    double epochLoss = 0.0;
    for (std::size_t start = 0; start < order.size();
         start += config_.batchSize) {
      const std::size_t end =
          std::min(order.size(), start + config_.batchSize);
      model.params().zeroGrad();
      nn::Var batchLoss;
      for (std::size_t i = start; i < end; ++i) {
        const PairSample& p = trainSet[order[i]];
        const nn::Var sa = model.forward(p.spec, p.a, p.tracesA);
        const nn::Var sb = model.forward(p.spec, p.b, p.tracesB);
        const nn::Matrix label(1, 1,
                               p.metricA > p.metricB ? 1.0f : 0.0f);
        const nn::Var loss = nn::bceWithLogits(nn::sub(sa, sb), label);
        epochLoss += loss->scalar();
        batchLoss = batchLoss ? nn::add(batchLoss, loss) : loss;
      }
      nn::backward(
          nn::scale(batchLoss, 1.0f / static_cast<float>(end - start)));
      if (config_.gradClip > 0.0f)
        model.params().clipGradNorm(config_.gradClip);
      opt.step();
    }

    RankEpochStats stats;
    stats.epoch = epoch;
    stats.trainLoss = epochLoss / static_cast<double>(trainSet.size());
    if (!valSet.empty()) stats.valPairAccuracy = pairAccuracy(model, valSet);
    history.push_back(stats);
    if (onEpoch) onEpoch(stats);
  }
  return history;
}

double RankTrainer::pairAccuracy(const NnffModel& model,
                                 const std::vector<PairSample>& set) {
  if (set.empty()) return 0.0;
  std::size_t correct = 0;
  for (const PairSample& p : set) {
    const float sa = model.forwardFast(p.spec, p.a, p.tracesA)[0];
    const float sb = model.forwardFast(p.spec, p.b, p.tracesB)[0];
    const bool predictedAFirst = sa > sb;
    const bool actualAFirst = p.metricA > p.metricB;
    correct += (predictedAFirst == actualAFirst) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(set.size());
}

}  // namespace netsyn::fitness
