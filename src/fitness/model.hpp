// The neural fitness-function model (paper Figure 2).
//
// Per IO example i, three encoders produce hidden vectors:
//   h_in   = LSTM over the embedded input tokens,
//   h_out  = LSTM over the embedded output tokens,
//   h_prog = LSTM over program steps, where step k is the function
//            embedding of f_k concatenated with an LSTM encoding of the
//            trace value t_k (Figure 2a, bottom row).
// Two stacked combiner LSTMs fuse [h_in, h_out, h_prog] into H_i; an
// example-level LSTM fuses {H_i} across the m examples (Figure 2b); two
// fully connected layers produce the output head:
//   Classifier  - softmax over fitness classes 0..numClasses-1 (f_CF, f_LCS)
//   Multilabel  - 41 sigmoid outputs, the function probability map (f_FP);
//                 per Balog et al. this head conditions on IO only, so the
//                 program/trace branch is skipped (useTrace = false)
//   Regression  - single scalar fitness (the paper's §5.3.1 ablation)
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dsl/program.hpp"
#include "dsl/spec.hpp"
#include "fitness/encoding.hpp"
#include "nn/inference.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace netsyn::dsl {
struct Domain;         // domain.hpp
struct LaneTraceView;  // lanes.hpp
}

namespace netsyn::fitness {

/// One candidate's NN-ready trace features, encoded straight from a
/// LaneTraceView by NnffModel::encodeLaneTrace: per (example i, step k) the
/// full stepLstm input row [funcEmb | trace encoding | match features], plus
/// the four example-level summary features. predictBatchEncoded feeds the
/// rows into the batched LSTMs directly, so the lane path never
/// materializes a trace Value.
struct EncodedTrace {
  std::size_t length = 0;     ///< candidate length (steps per example)
  std::size_t examples = 0;   ///< encoded examples: min(spec size, maxExamples)
  std::size_t stepWidth = 0;  ///< embedDim + hiddenDim + 2
  std::vector<float> steps;   ///< rows at [(i * length + k) * stepWidth]
  std::vector<float> gfeat;   ///< [i * 4]: final-dist features, exact fraction
};

enum class HeadKind : std::uint8_t { Classifier, Multilabel, Regression };

struct NnffConfig {
  EncoderConfig encoder;
  std::size_t embedDim = 16;
  std::size_t hiddenDim = 32;
  std::size_t numClasses = 6;  ///< classifier classes 0..L for L=5 targets
  std::size_t maxExamples = 5; ///< IO examples consumed per spec
  HeadKind head = HeadKind::Classifier;
  bool useTrace = true;        ///< false for the FP (IO-only) model
  std::uint64_t seed = 1;      ///< weight-init seed
  /// Output width of a Multilabel head: the domain's vocabulary size (0
  /// means default) for the FP probability map, kNumFunctions^2 for the
  /// §5.3.1 bigram model (list domain only).
  std::size_t multilabelDim = 0;
  /// The DSL domain the model grades: sizes the function-embedding table
  /// and the default Multilabel width, and maps program FuncIds to
  /// embedding rows. nullptr = list domain, whose local indices equal
  /// global FuncIds — weight shapes and forward passes are then exactly
  /// the pre-domain model's.
  const dsl::Domain* domain = nullptr;
};

class NnffModel {
 public:
  explicit NnffModel(NnffConfig config);

  NnffModel(const NnffModel&) = delete;
  NnffModel& operator=(const NnffModel&) = delete;

  const NnffConfig& config() const { return config_; }
  const TokenEncoder& encoder() const { return encoder_; }
  nn::ParamStore& params() { return params_; }
  const nn::ParamStore& params() const { return params_; }

  /// Output width: numClasses, the domain vocabulary size, or 1 depending
  /// on the head.
  std::size_t outDim() const;

  /// Rows of the function-embedding table: the domain's vocabulary size
  /// (kNumFunctions for the list domain).
  std::size_t funcVocabSize() const;

  /// Full forward pass: logits (1 x outDim). `traces[i]` is the execution
  /// trace of `candidate` on spec example i (traces[i].size() ==
  /// candidate.length()). Only the first maxExamples examples are consumed.
  nn::Var forward(const dsl::Spec& spec, const dsl::Program& candidate,
                  const std::vector<std::vector<dsl::Value>>& traces) const;

  /// IO-only forward (FP model): logits (1 x outDim).
  nn::Var forwardIOOnly(const dsl::Spec& spec) const;

  /// Allocation-free forward passes producing raw logits. Numerically
  /// identical to forward()/forwardIOOnly() (asserted by tests) but ~3-4x
  /// faster; used for single-gene scoring. Not thread-safe (reuses internal
  /// scratch buffers); clone the model per worker thread.
  std::vector<float> forwardFast(
      const dsl::Spec& spec, const dsl::Program& candidate,
      const std::vector<std::vector<dsl::Value>>& traces) const;
  std::vector<float> forwardIOOnlyFast(const dsl::Spec& spec) const;

  /// Population-batched forward pass: row i of the result is the logits of
  /// candidates[i] (bitwise identical to forwardFast on the same gene). The
  /// GA's hot path: spec encodings are computed once per example instead of
  /// once per gene, repeated trace values hit a memo, and every LSTM/linear
  /// layer runs the whole population as one matrix-matrix product.
  /// `traces[i]` are candidate i's per-example traces (as in forwardFast).
  /// Not thread-safe; clone the model per worker thread.
  std::vector<std::vector<float>> predictBatch(
      const dsl::Spec& spec,
      const std::vector<const dsl::Program*>& candidates,
      const std::vector<const std::vector<std::vector<dsl::Value>>*>& traces)
      const;

  /// predictBatch over the evaluator's execution results directly:
  /// `runs[i]` are candidate i's per-example ExecResults and the traces are
  /// read in place, so the GA's hot path never deep-copies a trace. Same
  /// output as predictBatch on the copied traces.
  std::vector<std::vector<float>> predictBatchRuns(
      const dsl::Spec& spec,
      const std::vector<const dsl::Program*>& candidates,
      const std::vector<const std::vector<dsl::ExecResult>*>& runs) const;

  /// The lane-view trace path. beginLaneCapture caches per-example output
  /// fingerprints and token spans for `spec`; encodeLaneTrace then fills
  /// `out` with `candidate`'s step rows and example features read straight
  /// from the SoA lane blocks — fingerprints over the lane segment, memoized
  /// encodings copied into LSTM-ready rows, no Value materialized anywhere.
  /// The rows are bitwise-identical to what predictBatchRuns computes from
  /// scattered traces (same memos, same float expressions), so
  /// predictBatchEncoded's scores equal the scalar path exactly — pinned by
  /// the differential fuzz suite. Not thread-safe, like the other fast paths.
  void beginLaneCapture(const dsl::Spec& spec) const;
  void encodeLaneTrace(const dsl::Spec& spec, const dsl::Program& candidate,
                       const dsl::LaneTraceView& view,
                       EncodedTrace& out) const;

  /// predictBatch over pre-encoded lane traces: `encoded[i]` must come from
  /// encodeLaneTrace on candidates[i] against the same spec. Output is
  /// bitwise-identical to predictBatchRuns on the scattered traces.
  std::vector<std::vector<float>> predictBatchEncoded(
      const dsl::Spec& spec,
      const std::vector<const dsl::Program*>& candidates,
      const std::vector<const EncodedTrace*>& encoded) const;

  /// Hit/miss counters of the trace-encoding and edit-distance memos, for
  /// tests and service stats (proves the two-generation eviction keeps the
  /// hit rate high when the working set sits at the capacity boundary).
  struct MemoStats {
    std::uint64_t traceHits = 0, traceMisses = 0;
    std::uint64_t editHits = 0, editMisses = 0;
  };
  MemoStats memoStats() const { return memoStats_; }

  /// Test hook: shrinks the memo capacity (entries per generation map) so
  /// boundary behavior is testable without 32k distinct values. Clears both
  /// memos and the counters.
  void setMemoCapacity(std::size_t cap);

  /// Deep copy with identical parameters and its own scratch/memo buffers —
  /// the unit of per-worker isolation for the parallel experiment runner.
  std::unique_ptr<NnffModel> clone() const;

  void save(const std::string& path) const { nn::saveParams(params_, path); }
  void load(const std::string& path) { nn::loadParams(params_, path); }

 private:
  /// Embeds a token sequence and encodes it with `lstm`.
  nn::Var encodeTokens(const nn::Lstm& lstm,
                       const std::vector<std::size_t>& tokens) const;

  /// Embedding row of a program function: its domain-local index (identity
  /// for the list domain).
  std::size_t funcRow(dsl::FuncId id) const;

  /// H_i for one example (program/trace branch included iff useTrace).
  nn::Var exampleVector(const dsl::IOExample& example,
                        const dsl::Program* candidate,
                        const std::vector<dsl::Value>* trace) const;

  nn::Var head(const nn::Var& h) const;

  /// Fast-path helpers (see model.cpp).
  void exampleVectorFast(const dsl::IOExample& example,
                         const dsl::Program* candidate,
                         const std::vector<dsl::Value>* trace,
                         float* out) const;

  /// Memoized traceLstm encoding of one trace value; `valueFp` is the
  /// value's fingerprint, computed once per step by the caller and shared
  /// with editDistanceMemo. The encoding is a pure function of the value,
  /// so entries never go stale. Bounded by a two-generation scheme (see
  /// the memo members below). On a hit neither the token sequence nor the
  /// encoding is recomputed.
  const std::vector<float>& traceEncodingMemo(const dsl::Value& value,
                                              std::uint64_t valueFp) const;

  /// Segment counterpart for the lane-view path: same memo maps, same keys
  /// (the fingerprint of the equivalent Value), tokens drawn straight from
  /// the arena segment (`xs[0]` for an int cell).
  const std::vector<float>& traceEncodingMemoSpan(std::uint64_t fp,
                                                  bool isInt,
                                                  const std::int32_t* xs,
                                                  std::size_t n) const;

  /// Memo plumbing shared by the Value and span entry points: lookup with
  /// previous-generation promotion, and miss-path insert (rotating the
  /// generations at capacity).
  const std::vector<float>* findTraceMemo(std::uint64_t key) const;
  const std::vector<float>& insertTraceMemo(
      std::uint64_t key, const std::vector<std::size_t>& tokens) const;
  const std::size_t* findEditMemo(std::uint64_t key) const;

  /// Memoized valueEditDistance(traceValue, output); both fingerprints are
  /// precomputed by the caller (the output's once per example, the trace
  /// value's once per step). Trace values recur heavily across a
  /// population's shared ancestry, and the DP behind a miss is O(|a|*|b|)
  /// with three allocations.
  std::size_t editDistanceMemo(const dsl::Value& traceValue,
                               std::uint64_t traceFp, std::uint64_t outputFp,
                               const dsl::Value& output) const;

  /// Segment counterpart (lane-view path): the trace side is an arena
  /// segment, the output side the cached token span from beginLaneCapture.
  std::size_t editDistanceMemoSpan(std::uint64_t traceFp,
                                   std::uint64_t outputFp,
                                   const std::int32_t* xs, std::size_t n,
                                   const std::vector<std::int32_t>& outToks)
      const;

  /// Shared core of predictBatch/predictBatchRuns/predictBatchEncoded:
  /// traceTable[b * m + i] points at candidate b's trace on example i (empty
  /// when !useTrace). When `encoded` is non-null it supplies the step rows
  /// and example features instead and traceTable is ignored — every LSTM and
  /// combiner below the feed is the same code either way, which is what
  /// makes the two paths bitwise-identical.
  std::vector<std::vector<float>> predictBatchImpl(
      const dsl::Spec& spec,
      const std::vector<const dsl::Program*>& candidates,
      const std::vector<const std::vector<dsl::Value>*>& traceTable,
      const std::vector<const EncodedTrace*>* encoded = nullptr) const;

  NnffConfig config_;
  const dsl::Domain* resolvedDomain_;  ///< config_.domain, null -> list
  TokenEncoder encoder_;
  nn::ParamStore params_;
  std::unique_ptr<nn::Embedding> valueEmb_;
  std::unique_ptr<nn::Embedding> funcEmb_;
  std::unique_ptr<nn::Lstm> inputLstm_;
  std::unique_ptr<nn::Lstm> outputLstm_;
  std::unique_ptr<nn::Lstm> traceLstm_;
  std::unique_ptr<nn::Lstm> stepLstm_;
  std::unique_ptr<nn::Linear> featProj_;  ///< example-level match features
  std::unique_ptr<nn::Linear> ioFeatProj_;  ///< IO property signature
  std::unique_ptr<nn::Lstm> combine1_;
  std::unique_ptr<nn::Lstm> combine2_;
  std::unique_ptr<nn::Lstm> exampleLstm_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  mutable nn::InferenceScratch scratch_;  ///< fast-path buffers
  /// Trace-value encoding memo for the batched path, keyed by a 64-bit
  /// FNV-1a fingerprint of the value (GA populations re-produce the same
  /// intermediate values across genes and generations). The fingerprint
  /// replaces a per-lookup heap-allocated string key; a collision could only
  /// substitute one value's encoding for another's in the fitness signal,
  /// and at < 2^32 distinct trace values per run is negligible.
  ///
  /// Bounding is two-generation: when the current map reaches capacity it
  /// becomes the previous generation and a fresh map starts; lookups probe
  /// current then previous, promoting previous-generation hits. A working
  /// set sitting at the capacity boundary therefore keeps hitting (the old
  /// wholesale clear() thrashed it to a 0% hit rate every generation), live
  /// memory stays <= 2x capacity, and stale-but-cold entries still age out.
  mutable std::unordered_map<std::uint64_t, std::vector<float>> traceMemo_;
  mutable std::unordered_map<std::uint64_t, std::vector<float>>
      traceMemoPrev_;
  /// Edit-distance memo, keyed by mixed (trace value, output) fingerprints;
  /// same bounding and collision reasoning as traceMemo_.
  mutable std::unordered_map<std::uint64_t, std::size_t> editMemo_;
  mutable std::unordered_map<std::uint64_t, std::size_t> editMemoPrev_;
  std::size_t memoCapacity_ = 1u << 15;  ///< entries per generation map
  mutable MemoStats memoStats_;

  // Lane-capture state (beginLaneCapture): per-example output fingerprints
  // and full token spans, so encodeLaneTrace computes them once per spec
  // instead of once per candidate. The spec pointer detects capture context
  // switches; encodeLaneTrace refreshes lazily when it changes.
  mutable const dsl::Spec* laneCaptureSpec_ = nullptr;
  mutable std::vector<std::uint64_t> laneOutputFps_;
  mutable std::vector<std::vector<std::int32_t>> laneOutputToks_;
  mutable std::vector<std::size_t> laneTokenScratch_;
};

}  // namespace netsyn::fitness
