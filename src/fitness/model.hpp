// The neural fitness-function model (paper Figure 2).
//
// Per IO example i, three encoders produce hidden vectors:
//   h_in   = LSTM over the embedded input tokens,
//   h_out  = LSTM over the embedded output tokens,
//   h_prog = LSTM over program steps, where step k is the function
//            embedding of f_k concatenated with an LSTM encoding of the
//            trace value t_k (Figure 2a, bottom row).
// Two stacked combiner LSTMs fuse [h_in, h_out, h_prog] into H_i; an
// example-level LSTM fuses {H_i} across the m examples (Figure 2b); two
// fully connected layers produce the output head:
//   Classifier  - softmax over fitness classes 0..numClasses-1 (f_CF, f_LCS)
//   Multilabel  - 41 sigmoid outputs, the function probability map (f_FP);
//                 per Balog et al. this head conditions on IO only, so the
//                 program/trace branch is skipped (useTrace = false)
//   Regression  - single scalar fitness (the paper's §5.3.1 ablation)
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dsl/program.hpp"
#include "dsl/spec.hpp"
#include "fitness/encoding.hpp"
#include "nn/inference.hpp"
#include "nn/layers.hpp"
#include "nn/serialize.hpp"

namespace netsyn::dsl {
struct Domain;  // domain.hpp
}

namespace netsyn::fitness {

enum class HeadKind : std::uint8_t { Classifier, Multilabel, Regression };

struct NnffConfig {
  EncoderConfig encoder;
  std::size_t embedDim = 16;
  std::size_t hiddenDim = 32;
  std::size_t numClasses = 6;  ///< classifier classes 0..L for L=5 targets
  std::size_t maxExamples = 5; ///< IO examples consumed per spec
  HeadKind head = HeadKind::Classifier;
  bool useTrace = true;        ///< false for the FP (IO-only) model
  std::uint64_t seed = 1;      ///< weight-init seed
  /// Output width of a Multilabel head: the domain's vocabulary size (0
  /// means default) for the FP probability map, kNumFunctions^2 for the
  /// §5.3.1 bigram model (list domain only).
  std::size_t multilabelDim = 0;
  /// The DSL domain the model grades: sizes the function-embedding table
  /// and the default Multilabel width, and maps program FuncIds to
  /// embedding rows. nullptr = list domain, whose local indices equal
  /// global FuncIds — weight shapes and forward passes are then exactly
  /// the pre-domain model's.
  const dsl::Domain* domain = nullptr;
};

class NnffModel {
 public:
  explicit NnffModel(NnffConfig config);

  NnffModel(const NnffModel&) = delete;
  NnffModel& operator=(const NnffModel&) = delete;

  const NnffConfig& config() const { return config_; }
  const TokenEncoder& encoder() const { return encoder_; }
  nn::ParamStore& params() { return params_; }
  const nn::ParamStore& params() const { return params_; }

  /// Output width: numClasses, the domain vocabulary size, or 1 depending
  /// on the head.
  std::size_t outDim() const;

  /// Rows of the function-embedding table: the domain's vocabulary size
  /// (kNumFunctions for the list domain).
  std::size_t funcVocabSize() const;

  /// Full forward pass: logits (1 x outDim). `traces[i]` is the execution
  /// trace of `candidate` on spec example i (traces[i].size() ==
  /// candidate.length()). Only the first maxExamples examples are consumed.
  nn::Var forward(const dsl::Spec& spec, const dsl::Program& candidate,
                  const std::vector<std::vector<dsl::Value>>& traces) const;

  /// IO-only forward (FP model): logits (1 x outDim).
  nn::Var forwardIOOnly(const dsl::Spec& spec) const;

  /// Allocation-free forward passes producing raw logits. Numerically
  /// identical to forward()/forwardIOOnly() (asserted by tests) but ~3-4x
  /// faster; used for single-gene scoring. Not thread-safe (reuses internal
  /// scratch buffers); clone the model per worker thread.
  std::vector<float> forwardFast(
      const dsl::Spec& spec, const dsl::Program& candidate,
      const std::vector<std::vector<dsl::Value>>& traces) const;
  std::vector<float> forwardIOOnlyFast(const dsl::Spec& spec) const;

  /// Population-batched forward pass: row i of the result is the logits of
  /// candidates[i] (bitwise identical to forwardFast on the same gene). The
  /// GA's hot path: spec encodings are computed once per example instead of
  /// once per gene, repeated trace values hit a memo, and every LSTM/linear
  /// layer runs the whole population as one matrix-matrix product.
  /// `traces[i]` are candidate i's per-example traces (as in forwardFast).
  /// Not thread-safe; clone the model per worker thread.
  std::vector<std::vector<float>> predictBatch(
      const dsl::Spec& spec,
      const std::vector<const dsl::Program*>& candidates,
      const std::vector<const std::vector<std::vector<dsl::Value>>*>& traces)
      const;

  /// predictBatch over the evaluator's execution results directly:
  /// `runs[i]` are candidate i's per-example ExecResults and the traces are
  /// read in place, so the GA's hot path never deep-copies a trace. Same
  /// output as predictBatch on the copied traces.
  std::vector<std::vector<float>> predictBatchRuns(
      const dsl::Spec& spec,
      const std::vector<const dsl::Program*>& candidates,
      const std::vector<const std::vector<dsl::ExecResult>*>& runs) const;

  /// Deep copy with identical parameters and its own scratch/memo buffers —
  /// the unit of per-worker isolation for the parallel experiment runner.
  std::unique_ptr<NnffModel> clone() const;

  void save(const std::string& path) const { nn::saveParams(params_, path); }
  void load(const std::string& path) { nn::loadParams(params_, path); }

 private:
  /// Embeds a token sequence and encodes it with `lstm`.
  nn::Var encodeTokens(const nn::Lstm& lstm,
                       const std::vector<std::size_t>& tokens) const;

  /// Embedding row of a program function: its domain-local index (identity
  /// for the list domain).
  std::size_t funcRow(dsl::FuncId id) const;

  /// H_i for one example (program/trace branch included iff useTrace).
  nn::Var exampleVector(const dsl::IOExample& example,
                        const dsl::Program* candidate,
                        const std::vector<dsl::Value>* trace) const;

  nn::Var head(const nn::Var& h) const;

  /// Fast-path helpers (see model.cpp).
  void exampleVectorFast(const dsl::IOExample& example,
                         const dsl::Program* candidate,
                         const std::vector<dsl::Value>* trace,
                         float* out) const;

  /// Memoized traceLstm encoding of one trace value; `valueFp` is the
  /// value's fingerprint, computed once per step by the caller and shared
  /// with editDistanceMemo. The encoding is a pure function of the value,
  /// so entries never go stale; the memo is cleared when it outgrows its
  /// bound. On a hit neither the token sequence nor the encoding is
  /// recomputed.
  const std::vector<float>& traceEncodingMemo(const dsl::Value& value,
                                              std::uint64_t valueFp) const;

  /// Memoized valueEditDistance(traceValue, output); both fingerprints are
  /// precomputed by the caller (the output's once per example, the trace
  /// value's once per step). Trace values recur heavily across a
  /// population's shared ancestry, and the DP behind a miss is O(|a|*|b|)
  /// with three allocations.
  std::size_t editDistanceMemo(const dsl::Value& traceValue,
                               std::uint64_t traceFp, std::uint64_t outputFp,
                               const dsl::Value& output) const;

  /// Shared core of predictBatch/predictBatchRuns: traceTable[b * m + i]
  /// points at candidate b's trace on example i (empty when !useTrace).
  std::vector<std::vector<float>> predictBatchImpl(
      const dsl::Spec& spec,
      const std::vector<const dsl::Program*>& candidates,
      const std::vector<const std::vector<dsl::Value>*>& traceTable) const;

  NnffConfig config_;
  const dsl::Domain* resolvedDomain_;  ///< config_.domain, null -> list
  TokenEncoder encoder_;
  nn::ParamStore params_;
  std::unique_ptr<nn::Embedding> valueEmb_;
  std::unique_ptr<nn::Embedding> funcEmb_;
  std::unique_ptr<nn::Lstm> inputLstm_;
  std::unique_ptr<nn::Lstm> outputLstm_;
  std::unique_ptr<nn::Lstm> traceLstm_;
  std::unique_ptr<nn::Lstm> stepLstm_;
  std::unique_ptr<nn::Linear> featProj_;  ///< example-level match features
  std::unique_ptr<nn::Linear> ioFeatProj_;  ///< IO property signature
  std::unique_ptr<nn::Lstm> combine1_;
  std::unique_ptr<nn::Lstm> combine2_;
  std::unique_ptr<nn::Lstm> exampleLstm_;
  std::unique_ptr<nn::Linear> fc1_;
  std::unique_ptr<nn::Linear> fc2_;
  mutable nn::InferenceScratch scratch_;  ///< fast-path buffers
  /// Trace-value encoding memo for the batched path, keyed by a 64-bit
  /// FNV-1a fingerprint of the token sequence (GA populations re-produce the
  /// same intermediate values across genes and generations). The fingerprint
  /// replaces a per-lookup heap-allocated string key; a collision could only
  /// substitute one value's encoding for another's in the fitness signal,
  /// and at < 2^32 distinct trace values per run is negligible.
  mutable std::unordered_map<std::uint64_t, std::vector<float>> traceMemo_;
  /// Edit-distance memo, keyed by mixed (trace value, output) fingerprints;
  /// same bounding and collision reasoning as traceMemo_.
  mutable std::unordered_map<std::uint64_t, std::size_t> editMemo_;
};

}  // namespace netsyn::fitness
