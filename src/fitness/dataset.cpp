#include "fitness/dataset.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "dsl/domain.hpp"
#include "dsl/interpreter.hpp"
#include "fitness/metrics.hpp"

namespace netsyn::fitness {
namespace {

/// Domain-vocabulary functions that appear nowhere in `target` (filler pool
/// that cannot increase CF or LCS). Vocabulary order, so the list domain's
/// pool is the classic ascending-FuncId scan.
std::vector<dsl::FuncId> absentFunctions(const dsl::Program& target,
                                         const dsl::Domain& domain) {
  std::array<bool, dsl::kTotalFunctions> present{};
  for (dsl::FuncId f : target.functions()) present[f] = true;
  std::vector<dsl::FuncId> pool;
  for (dsl::FuncId f : domain.vocabulary)
    if (!present[f]) pool.push_back(f);
  return pool;
}

/// `count` distinct indices of [0, n), sorted.
std::vector<std::size_t> sortedIndexSample(std::size_t n, std::size_t count,
                                           util::Rng& rng) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  idx.resize(count);
  std::sort(idx.begin(), idx.end());
  return idx;
}

}  // namespace

dsl::Program DatasetBuilder::makeCandidateWithLabel(
    const dsl::Program& target, std::size_t label, BalanceMetric metric,
    util::Rng& rng) const {
  const std::size_t len = target.length();
  if (label > len)
    throw std::invalid_argument("label exceeds program length");
  const auto pool =
      absentFunctions(target, dsl::resolveDomain(config_.generator.domain));
  if (pool.empty() && label < len)
    throw std::invalid_argument("target uses the whole DSL; cannot dilute");

  const auto kept = sortedIndexSample(len, label, rng);

  std::vector<dsl::FuncId> fns;
  fns.reserve(len);
  for (std::size_t i : kept) fns.push_back(target.at(i));
  while (fns.size() < len) fns.push_back(rng.pick(pool));

  if (metric == BalanceMetric::CF) {
    // Order is irrelevant for CF; shuffle for diversity.
    rng.shuffle(fns);
  } else {
    // LCS: the kept functions must stay in target order; distribute the
    // filler functions around them uniformly. Partial Fisher-Yates over
    // *positions*: choose which slots hold fillers, fill the rest in order.
    std::vector<dsl::FuncId> out(len);
    auto fillerSlots = sortedIndexSample(len, len - label, rng);
    std::size_t fillerIdx = label;  // fns[label..] are fillers
    std::size_t keptIdx = 0;        // fns[0..label) are kept, in order
    std::size_t nextFiller = 0;
    for (std::size_t pos = 0; pos < len; ++pos) {
      if (nextFiller < fillerSlots.size() && fillerSlots[nextFiller] == pos) {
        out[pos] = fns[fillerIdx++];
        ++nextFiller;
      } else {
        out[pos] = fns[keptIdx++];
      }
    }
    fns = std::move(out);
  }
  return dsl::Program(std::move(fns));
}

std::optional<Sample> DatasetBuilder::makeSample(std::size_t label,
                                                 BalanceMetric metric,
                                                 util::Rng& rng) const {
  const dsl::Generator gen(config_.generator);
  const auto sig = gen.randomSignature(rng);
  const auto target =
      gen.randomProgram(config_.programLength, sig, rng);
  if (!target) return std::nullopt;
  const auto spec = gen.makeSpec(*target, sig, config_.numExamples, rng);
  if (!spec) return std::nullopt;

  Sample s;
  s.target = *target;
  s.spec = *spec;
  s.candidate = makeCandidateWithLabel(*target, label, metric, rng);
  s.traces = tracesFor(s.candidate, s.spec);
  s.cf = commonFunctions(s.candidate, s.target);
  s.lcs = longestCommonSubsequence(s.candidate, s.target);
  const dsl::Domain& dom = dsl::resolveDomain(config_.generator.domain);
  s.funcPresence.assign(dom.vocabSize(), 0.0f);
  for (dsl::FuncId f : s.target.functions())
    s.funcPresence[dom.localIndex(f)] = 1.0f;
  return s;
}

std::vector<Sample> DatasetBuilder::build(std::size_t n, BalanceMetric metric,
                                          util::Rng& rng) const {
  std::vector<Sample> out;
  out.reserve(n);
  std::size_t label = 0;
  while (out.size() < n) {
    // Advance the label only on success so generation failures (degenerate
    // specs) cannot skew the class balance.
    if (auto s = makeSample(label, metric, rng)) {
      out.push_back(std::move(*s));
      label = (label + 1) % (config_.programLength + 1);
    }
  }
  return out;
}

std::optional<PairSample> makePairSample(const DatasetConfig& config,
                                         std::size_t labelA,
                                         std::size_t labelB,
                                         BalanceMetric metric,
                                         util::Rng& rng) {
  const dsl::Generator gen(config.generator);
  const DatasetBuilder builder(config);
  const auto sig = gen.randomSignature(rng);
  const auto target = gen.randomProgram(config.programLength, sig, rng);
  if (!target) return std::nullopt;
  const auto spec = gen.makeSpec(*target, sig, config.numExamples, rng);
  if (!spec) return std::nullopt;

  PairSample p;
  p.target = *target;
  p.spec = *spec;
  p.a = builder.makeCandidateWithLabel(*target, labelA, metric, rng);
  p.b = builder.makeCandidateWithLabel(*target, labelB, metric, rng);
  p.tracesA = tracesFor(p.a, p.spec);
  p.tracesB = tracesFor(p.b, p.spec);
  const auto metricOf = [&](const dsl::Program& c) {
    return metric == BalanceMetric::CF
               ? commonFunctions(c, *target)
               : longestCommonSubsequence(c, *target);
  };
  p.metricA = metricOf(p.a);
  p.metricB = metricOf(p.b);
  return p;
}

std::vector<PairSample> buildPairs(const DatasetConfig& config, std::size_t n,
                                   BalanceMetric metric, util::Rng& rng) {
  // Enumerate ordered label pairs (a, b), a != b, and cycle through them.
  std::vector<std::pair<std::size_t, std::size_t>> labelPairs;
  for (std::size_t a = 0; a <= config.programLength; ++a)
    for (std::size_t b = 0; b <= config.programLength; ++b)
      if (a != b) labelPairs.emplace_back(a, b);

  std::vector<PairSample> out;
  out.reserve(n);
  std::size_t next = 0;
  while (out.size() < n) {
    const auto [la, lb] = labelPairs[next];
    if (auto p = makePairSample(config, la, lb, metric, rng)) {
      out.push_back(std::move(*p));
      next = (next + 1) % labelPairs.size();
    }
  }
  return out;
}

std::vector<std::vector<dsl::Value>> tracesFor(const dsl::Program& candidate,
                                               const dsl::Spec& spec) {
  std::vector<std::vector<dsl::Value>> traces;
  traces.reserve(spec.size());
  for (const auto& ex : spec.examples)
    traces.push_back(dsl::run(candidate, ex.inputs).trace);
  return traces;
}

}  // namespace netsyn::fitness
