#include "fitness/neural_fitness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netsyn::fitness {
namespace {

std::vector<std::vector<dsl::Value>> tracesFromRuns(
    const std::vector<dsl::ExecResult>& runs) {
  std::vector<std::vector<dsl::Value>> traces;
  traces.reserve(runs.size());
  for (const auto& r : runs) traces.push_back(r.trace);
  return traces;
}

/// Stable softmax over raw logits (identical arithmetic to
/// NeuralFitness::classProbabilities, so scalar and batched scores agree
/// bitwise).
std::vector<double> softmaxOfLogits(const std::vector<float>& logits) {
  const float mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double sum = 0.0;
  for (std::size_t j = 0; j < logits.size(); ++j) {
    probs[j] = std::exp(static_cast<double>(logits[j] - mx));
    sum += probs[j];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

double expectationFromLogits(const std::vector<float>& logits) {
  const auto probs = softmaxOfLogits(logits);
  double expectation = 0.0;
  for (std::size_t j = 0; j < probs.size(); ++j)
    expectation += static_cast<double>(j) * probs[j];
  return expectation;
}

/// Runs one batched forward per maximal run of contexts sharing a spec (in
/// the GA every context shares the generation's spec, so this is one batch)
/// and maps each gene's logits row through `toScore`. Contexts that carry
/// lane-encoded traces go through predictBatchEncoded; the rest read the
/// evaluator's ExecResults in place via predictBatchRuns — either way no
/// trace is copied. Grouping also splits on encoded-ness so a mixed
/// population (e.g. lane-graded generation plus scatter-graded stragglers)
/// batches each flavor separately.
template <typename ToScore>
std::vector<double> batchOverSharedSpecs(
    NnffModel& model, const std::vector<const dsl::Program*>& genes,
    const std::vector<const EvalContext*>& contexts, const ToScore& toScore) {
  std::vector<double> out(genes.size());
  std::size_t begin = 0;
  while (begin < genes.size()) {
    const bool laneEncoded = contexts[begin]->encoded != nullptr;
    std::size_t end = begin + 1;
    while (end < genes.size() &&
           &contexts[end]->spec == &contexts[begin]->spec &&
           (contexts[end]->encoded != nullptr) == laneEncoded)
      ++end;
    const std::size_t n = end - begin;
    std::vector<const dsl::Program*> progs(n);
    for (std::size_t i = 0; i < n; ++i) progs[i] = genes[begin + i];
    std::vector<std::vector<float>> logits;
    if (laneEncoded) {
      std::vector<const EncodedTrace*> encoded(n);
      for (std::size_t i = 0; i < n; ++i)
        encoded[i] = contexts[begin + i]->encoded;
      logits =
          model.predictBatchEncoded(contexts[begin]->spec, progs, encoded);
    } else {
      std::vector<const std::vector<dsl::ExecResult>*> runs(n);
      for (std::size_t i = 0; i < n; ++i) runs[i] = &contexts[begin + i]->runs;
      logits = model.predictBatchRuns(contexts[begin]->spec, progs, runs);
    }
    for (std::size_t i = 0; i < n; ++i) out[begin + i] = toScore(logits[i]);
    begin = end;
  }
  return out;
}

}  // namespace

NeuralFitness::NeuralFitness(std::shared_ptr<NnffModel> model,
                             std::string name)
    : model_(std::move(model)), name_(std::move(name)), sink_(model_.get()) {
  if (model_->config().head != HeadKind::Classifier)
    throw std::invalid_argument("NeuralFitness requires a Classifier head");
}

std::vector<double> NeuralFitness::classProbabilities(
    const dsl::Program& gene, const EvalContext& ctx) const {
  if (ctx.encoded)
    return softmaxOfLogits(
        model_->predictBatchEncoded(ctx.spec, {&gene}, {ctx.encoded})[0]);
  return softmaxOfLogits(
      model_->forwardFast(ctx.spec, gene, tracesFromRuns(ctx.runs)));
}

double NeuralFitness::score(const dsl::Program& gene,
                            const EvalContext& ctx) {
  if (ctx.encoded)
    return expectationFromLogits(
        model_->predictBatchEncoded(ctx.spec, {&gene}, {ctx.encoded})[0]);
  return expectationFromLogits(
      model_->forwardFast(ctx.spec, gene, tracesFromRuns(ctx.runs)));
}

std::vector<double> NeuralFitness::scoreBatch(
    const std::vector<const dsl::Program*>& genes,
    const std::vector<const EvalContext*>& contexts) {
  return batchOverSharedSpecs(*model_, genes, contexts,
                              expectationFromLogits);
}

ProbMapFitness::ProbMapFitness(std::shared_ptr<NnffModel> fpModel)
    : model_(std::move(fpModel)),
      domain_(&dsl::resolveDomain(model_->config().domain)) {
  if (model_->config().head != HeadKind::Multilabel ||
      model_->config().useTrace)
    throw std::invalid_argument(
        "ProbMapFitness requires an IO-only Multilabel model");
  if (model_->outDim() != domain_->vocabSize())
    throw std::invalid_argument(
        "ProbMapFitness: multilabel width != domain vocabulary size");
}

std::vector<double> ProbMapFitness::probMap(const dsl::Spec& spec) {
  const std::uint64_t fp = spec.fingerprint();
  if (hasCachedMap_ && cachedFingerprint_ == fp) return cachedMap_;
  const auto logits = model_->forwardIOOnlyFast(spec);
  cachedMap_.resize(domain_->vocabSize());
  for (std::size_t j = 0; j < cachedMap_.size(); ++j) {
    cachedMap_[j] =
        1.0 / (1.0 + std::exp(-static_cast<double>(logits[j])));
  }
  hasCachedMap_ = true;
  cachedFingerprint_ = fp;
  return cachedMap_;
}

double ProbMapFitness::score(const dsl::Program& gene,
                             const EvalContext& ctx) {
  const auto map = probMap(ctx.spec);
  double total = 0.0;
  for (dsl::FuncId f : gene.functions()) total += map[domain_->localIndex(f)];
  return total;
}

std::vector<double> ProbMapFitness::scoreBatch(
    const std::vector<const dsl::Program*>& genes,
    const std::vector<const EvalContext*>& contexts) {
  std::vector<double> out(genes.size());
  std::size_t begin = 0;
  while (begin < genes.size()) {
    std::size_t end = begin + 1;
    while (end < genes.size() &&
           &contexts[end]->spec == &contexts[begin]->spec)
      ++end;
    const auto map = probMap(contexts[begin]->spec);
    for (std::size_t i = begin; i < end; ++i) {
      double total = 0.0;
      for (dsl::FuncId f : genes[i]->functions())
        total += map[domain_->localIndex(f)];
      out[i] = total;
    }
    begin = end;
  }
  return out;
}

RegressionFitness::RegressionFitness(std::shared_ptr<NnffModel> model)
    : model_(std::move(model)), sink_(model_.get()) {
  if (model_->config().head != HeadKind::Regression)
    throw std::invalid_argument("RegressionFitness requires Regression head");
}

double RegressionFitness::score(const dsl::Program& gene,
                                const EvalContext& ctx) {
  const auto pred =
      ctx.encoded
          ? model_->predictBatchEncoded(ctx.spec, {&gene}, {ctx.encoded})[0]
          : model_->forwardFast(ctx.spec, gene, tracesFromRuns(ctx.runs));
  return std::max(0.0, static_cast<double>(pred[0]));
}

std::vector<double> RegressionFitness::scoreBatch(
    const std::vector<const dsl::Program*>& genes,
    const std::vector<const EvalContext*>& contexts) {
  return batchOverSharedSpecs(
      *model_, genes, contexts, [](const std::vector<float>& pred) {
        return std::max(0.0, static_cast<double>(pred[0]));
      });
}

}  // namespace netsyn::fitness
