#include "fitness/neural_fitness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netsyn::fitness {
namespace {

std::vector<std::vector<dsl::Value>> tracesFromRuns(
    const std::vector<dsl::ExecResult>& runs) {
  std::vector<std::vector<dsl::Value>> traces;
  traces.reserve(runs.size());
  for (const auto& r : runs) traces.push_back(r.trace);
  return traces;
}

}  // namespace

NeuralFitness::NeuralFitness(std::shared_ptr<NnffModel> model,
                             std::string name)
    : model_(std::move(model)), name_(std::move(name)) {
  if (model_->config().head != HeadKind::Classifier)
    throw std::invalid_argument("NeuralFitness requires a Classifier head");
}

std::vector<double> NeuralFitness::classProbabilities(
    const dsl::Program& gene, const EvalContext& ctx) const {
  const auto logits =
      model_->forwardFast(ctx.spec, gene, tracesFromRuns(ctx.runs));
  // Stable softmax over the raw logits.
  const float mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> probs(logits.size());
  double sum = 0.0;
  for (std::size_t j = 0; j < logits.size(); ++j) {
    probs[j] = std::exp(static_cast<double>(logits[j] - mx));
    sum += probs[j];
  }
  for (double& p : probs) p /= sum;
  return probs;
}

double NeuralFitness::score(const dsl::Program& gene,
                            const EvalContext& ctx) {
  const auto probs = classProbabilities(gene, ctx);
  double expectation = 0.0;
  for (std::size_t j = 0; j < probs.size(); ++j)
    expectation += static_cast<double>(j) * probs[j];
  return expectation;
}

ProbMapFitness::ProbMapFitness(std::shared_ptr<NnffModel> fpModel)
    : model_(std::move(fpModel)) {
  if (model_->config().head != HeadKind::Multilabel ||
      model_->config().useTrace)
    throw std::invalid_argument(
        "ProbMapFitness requires an IO-only Multilabel model");
}

std::array<double, dsl::kNumFunctions> ProbMapFitness::probMap(
    const dsl::Spec& spec) {
  if (cachedSpec_ == &spec) return cachedMap_;
  const auto logits = model_->forwardIOOnlyFast(spec);
  for (std::size_t j = 0; j < dsl::kNumFunctions; ++j) {
    cachedMap_[j] =
        1.0 / (1.0 + std::exp(-static_cast<double>(logits[j])));
  }
  cachedSpec_ = &spec;
  return cachedMap_;
}

double ProbMapFitness::score(const dsl::Program& gene,
                             const EvalContext& ctx) {
  const auto map = probMap(ctx.spec);
  double total = 0.0;
  for (dsl::FuncId f : gene.functions()) total += map[f];
  return total;
}

RegressionFitness::RegressionFitness(std::shared_ptr<NnffModel> model)
    : model_(std::move(model)) {
  if (model_->config().head != HeadKind::Regression)
    throw std::invalid_argument("RegressionFitness requires Regression head");
}

double RegressionFitness::score(const dsl::Program& gene,
                                const EvalContext& ctx) {
  const auto pred =
      model_->forwardFast(ctx.spec, gene, tracesFromRuns(ctx.runs));
  return std::max(0.0, static_cast<double>(pred[0]));
}

}  // namespace netsyn::fitness
