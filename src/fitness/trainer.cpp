#include "fitness/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fitness/extras.hpp"
#include "nn/optim.hpp"

namespace netsyn::fitness {

std::size_t Trainer::classLabel(const NnffModel& model,
                                const Sample& sample) const {
  const std::size_t raw =
      config_.labelMetric == BalanceMetric::CF ? sample.cf : sample.lcs;
  if (config_.labelTransform == LabelTransform::ZeroVsNonzero)
    return raw == 0 ? 0 : 1;
  return std::min(raw, model.config().numClasses - 1);
}

nn::Var Trainer::sampleLoss(const NnffModel& model,
                            const Sample& sample) const {
  switch (model.config().head) {
    case HeadKind::Classifier: {
      const auto logits = model.forward(sample.spec, sample.candidate,
                                        sample.traces);
      return nn::softmaxCrossEntropy(logits, classLabel(model, sample));
    }
    case HeadKind::Multilabel: {
      const auto logits = model.forwardIOOnly(sample.spec);
      const std::size_t out = model.outDim();
      nn::Matrix targets(1, out);
      if (out == sample.funcPresence.size()) {
        for (std::size_t i = 0; i < out; ++i)
          targets.at(i) = sample.funcPresence[i];
      } else {
        // Bigram model (§5.3.1): adjacent-pair presence of the target.
        const auto pairs = bigramTargets(sample.target);
        if (pairs.size() != out)
          throw std::invalid_argument("unsupported multilabel width");
        for (std::size_t i = 0; i < out; ++i) targets.at(i) = pairs[i];
      }
      return nn::bceWithLogits(logits, targets);
    }
    case HeadKind::Regression: {
      const auto pred = model.forward(sample.spec, sample.candidate,
                                      sample.traces);
      const float label = static_cast<float>(
          config_.labelMetric == BalanceMetric::CF ? sample.cf : sample.lcs);
      return nn::mseLoss(pred, nn::Matrix(1, 1, label));
    }
  }
  throw std::logic_error("unknown head");
}

std::vector<EpochStats> Trainer::train(
    NnffModel& model, const std::vector<Sample>& trainSet,
    const std::vector<Sample>& valSet,
    const std::function<void(const EpochStats&)>& onEpoch) const {
  if (trainSet.empty()) throw std::invalid_argument("empty training set");

  nn::Adam opt(model.params(), config_.learningRate);
  util::Rng shuffler(config_.shuffleSeed);
  std::vector<std::size_t> order(trainSet.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<EpochStats> history;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffler.shuffle(order);
    double epochLoss = 0.0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < order.size();
         start += config_.batchSize) {
      const std::size_t end =
          std::min(order.size(), start + config_.batchSize);
      model.params().zeroGrad();
      nn::Var batchLoss;
      for (std::size_t i = start; i < end; ++i) {
        const nn::Var loss = sampleLoss(model, trainSet[order[i]]);
        epochLoss += loss->scalar();
        batchLoss = batchLoss ? nn::add(batchLoss, loss) : loss;
      }
      ++seen;
      nn::backward(nn::scale(batchLoss,
                             1.0f / static_cast<float>(end - start)));
      if (config_.gradClip > 0.0f)
        model.params().clipGradNorm(config_.gradClip);
      opt.step();
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.trainLoss = epochLoss / static_cast<double>(trainSet.size());
    if (!valSet.empty()) {
      const auto [loss, acc] = evaluate(model, valSet);
      stats.valLoss = loss;
      stats.valAccuracy = acc;
    }
    history.push_back(stats);
    if (onEpoch) onEpoch(stats);
  }
  return history;
}

std::pair<double, double> Trainer::evaluate(
    const NnffModel& model, const std::vector<Sample>& set) const {
  if (set.empty()) return {0.0, 0.0};
  nn::InferenceModeGuard guard;
  double totalLoss = 0.0;
  double correct = 0.0;
  for (const Sample& s : set) {
    totalLoss += sampleLoss(model, s)->scalar();
    switch (model.config().head) {
      case HeadKind::Classifier: {
        const auto logits =
            model.forward(s.spec, s.candidate, s.traces);
        const auto probs = nn::softmaxValue(logits->value());
        std::size_t argmax = 0;
        for (std::size_t j = 1; j < probs.cols(); ++j)
          if (probs.at(j) > probs.at(argmax)) argmax = j;
        correct += (argmax == classLabel(model, s)) ? 1.0 : 0.0;
        break;
      }
      case HeadKind::Multilabel: {
        const auto logits = model.forwardIOOnly(s.spec);
        const std::size_t out = model.outDim();
        const std::vector<float> targets =
            out == s.funcPresence.size() ? s.funcPresence
                                         : bigramTargets(s.target);
        std::size_t hits = 0;
        for (std::size_t j = 0; j < out; ++j) {
          const bool predicted = logits->value().at(j) >= 0.0f;  // p >= 0.5
          const bool present = targets[j] >= 0.5f;
          hits += (predicted == present) ? 1 : 0;
        }
        correct += static_cast<double>(hits) / static_cast<double>(out);
        break;
      }
      case HeadKind::Regression: {
        const auto pred =
            model.forward(s.spec, s.candidate, s.traces);
        const float label = static_cast<float>(
            config_.labelMetric == BalanceMetric::CF ? s.cf : s.lcs);
        // "Accurate" when the rounded prediction hits the label.
        correct +=
            (std::lround(pred->value().at(0)) == std::lround(label)) ? 1.0
                                                                     : 0.0;
        break;
      }
    }
  }
  return {totalLoss / static_cast<double>(set.size()),
          correct / static_cast<double>(set.size())};
}

util::ConfusionMatrix Trainer::confusion(const NnffModel& model,
                                         const std::vector<Sample>& set) const {
  if (model.config().head != HeadKind::Classifier)
    throw std::logic_error("confusion() requires a Classifier head");
  nn::InferenceModeGuard guard;
  util::ConfusionMatrix cm(model.config().numClasses);
  for (const Sample& s : set) {
    const auto logits = model.forward(s.spec, s.candidate, s.traces);
    const auto probs = nn::softmaxValue(logits->value());
    std::size_t argmax = 0;
    for (std::size_t j = 1; j < probs.cols(); ++j)
      if (probs.at(j) > probs.at(argmax)) argmax = j;
    cm.add(classLabel(model, s), argmax);
  }
  return cm;
}

double Trainer::multilabelAccuracy(const NnffModel& model,
                                   const std::vector<Sample>& set) {
  if (model.config().head != HeadKind::Multilabel)
    throw std::logic_error("multilabelAccuracy requires a Multilabel head");
  if (set.empty()) return 0.0;
  nn::InferenceModeGuard guard;
  double correct = 0.0;
  for (const Sample& s : set) {
    const auto logits = model.forwardIOOnly(s.spec);
    const std::size_t out = model.outDim();
    const std::vector<float> targets = out == s.funcPresence.size()
                                           ? s.funcPresence
                                           : bigramTargets(s.target);
    std::size_t hits = 0;
    for (std::size_t j = 0; j < out; ++j) {
      const bool predicted = logits->value().at(j) >= 0.0f;
      const bool present = targets[j] >= 0.5f;
      hits += (predicted == present) ? 1 : 0;
    }
    correct += static_cast<double>(hits) / static_cast<double>(out);
  }
  return correct / static_cast<double>(set.size());
}

double Trainer::regressionMae(const NnffModel& model,
                              const std::vector<Sample>& set) const {
  if (model.config().head != HeadKind::Regression)
    throw std::logic_error("regressionMae requires a Regression head");
  if (set.empty()) return 0.0;
  nn::InferenceModeGuard guard;
  double total = 0.0;
  for (const Sample& s : set) {
    const auto pred = model.forward(s.spec, s.candidate, s.traces);
    const double label = static_cast<double>(
        config_.labelMetric == BalanceMetric::CF ? s.cf : s.lcs);
    total += std::fabs(static_cast<double>(pred->value().at(0)) - label);
  }
  return total / static_cast<double>(set.size());
}

}  // namespace netsyn::fitness
