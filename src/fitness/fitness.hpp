// Fitness-function interface used by the genetic algorithm.
//
// A fitness function grades how close a candidate gene is to a program
// satisfying the specification (paper §4.2.1). Implementations include the
// oracle metrics (which peek at the target program and are the labels the
// neural models are trained to predict), output edit distance (the classic
// hand-crafted GP fitness the paper argues against), and the learned NN-FF
// variants (CF / LCS classifiers, FP probability map).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsl/interpreter.hpp"
#include "dsl/program.hpp"
#include "dsl/spec.hpp"

namespace netsyn::fitness {

struct EncodedTrace;  // model.hpp

/// Execution results of a candidate on every spec input. The synthesizer
/// executes each gene exactly once (also for the equivalence check) and
/// shares the runs with the fitness function, so graders never re-execute.
///
/// When the synthesizer graded the gene through the lane executor, `encoded`
/// points at the candidate's pre-encoded trace features (produced by a
/// LaneTraceSink while the SoA lane blocks were still live) and `runs` is
/// empty — the grader never sees a materialized trace.
struct EvalContext {
  const dsl::Spec& spec;
  const std::vector<dsl::ExecResult>& runs;  // one per spec example
  const EncodedTrace* encoded = nullptr;     // lane path; null = use runs
};

/// Placeholder runs for lane-path contexts (EvalContext::runs must bind to
/// something even when the trace was never scattered).
inline const std::vector<dsl::ExecResult> kNoRuns{};

/// Receiver of lane-trace views on the synthesizer's batched grading path.
/// The synthesizer calls beginCapture once per generation, then capture()
/// for each gene while that gene's SoA lane blocks are still live — the sink
/// must consume the view before the call returns (the next execution reuses
/// the blocks). Trace-reading fitness functions expose one via laneSink().
class LaneTraceSink {
 public:
  virtual ~LaneTraceSink() = default;
  virtual void beginCapture(const dsl::Spec& spec, std::size_t count) = 0;
  virtual void capture(std::size_t slot, const dsl::Program& candidate,
                       const dsl::LaneTraceView& view) = 0;
  /// The features captured into `slot`; the reference stays valid until the
  /// next beginCapture.
  virtual const EncodedTrace& at(std::size_t slot) const = 0;
};

class FitnessFunction {
 public:
  virtual ~FitnessFunction() = default;

  /// Non-negative grade; higher is closer to the target. Used directly as
  /// the Roulette Wheel weight.
  virtual double score(const dsl::Program& gene, const EvalContext& ctx) = 0;

  /// Batched grading: result[i] == score(*genes[i], *contexts[i]). The GA
  /// grades whole populations through this entry point. The default loops
  /// over score() so oracle/ablation fitnesses keep working unchanged; the
  /// neural fitnesses override it with a single population-batched forward
  /// pass (parity pinned to 1e-9 by tests).
  virtual std::vector<double> scoreBatch(
      const std::vector<const dsl::Program*>& genes,
      const std::vector<const EvalContext*>& contexts) {
    std::vector<double> out;
    out.reserve(genes.size());
    for (std::size_t i = 0; i < genes.size(); ++i)
      out.push_back(score(*genes[i], *contexts[i]));
    return out;
  }

  /// Upper bound of score() for the given target length (used by the
  /// neighborhood-search trigger's normalization and by reports). May be
  /// +infinity for unbounded graders.
  virtual double maxScore(std::size_t targetLength) const = 0;

  virtual std::string name() const = 0;

  /// Non-null iff this fitness can grade from lane-encoded traces: the
  /// synthesizer then routes execution through the lane executor's view
  /// path (no per-Value scatter) and passes contexts with
  /// EvalContext::encoded set. Default: scatter-and-copy as before.
  virtual LaneTraceSink* laneSink() { return nullptr; }
};

using FitnessPtr = std::shared_ptr<FitnessFunction>;

}  // namespace netsyn::fitness
