// Fitness-function interface used by the genetic algorithm.
//
// A fitness function grades how close a candidate gene is to a program
// satisfying the specification (paper §4.2.1). Implementations include the
// oracle metrics (which peek at the target program and are the labels the
// neural models are trained to predict), output edit distance (the classic
// hand-crafted GP fitness the paper argues against), and the learned NN-FF
// variants (CF / LCS classifiers, FP probability map).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsl/interpreter.hpp"
#include "dsl/program.hpp"
#include "dsl/spec.hpp"

namespace netsyn::fitness {

/// Execution results of a candidate on every spec input. The synthesizer
/// executes each gene exactly once (also for the equivalence check) and
/// shares the runs with the fitness function, so graders never re-execute.
struct EvalContext {
  const dsl::Spec& spec;
  const std::vector<dsl::ExecResult>& runs;  // one per spec example
};

class FitnessFunction {
 public:
  virtual ~FitnessFunction() = default;

  /// Non-negative grade; higher is closer to the target. Used directly as
  /// the Roulette Wheel weight.
  virtual double score(const dsl::Program& gene, const EvalContext& ctx) = 0;

  /// Batched grading: result[i] == score(*genes[i], *contexts[i]). The GA
  /// grades whole populations through this entry point. The default loops
  /// over score() so oracle/ablation fitnesses keep working unchanged; the
  /// neural fitnesses override it with a single population-batched forward
  /// pass (parity pinned to 1e-9 by tests).
  virtual std::vector<double> scoreBatch(
      const std::vector<const dsl::Program*>& genes,
      const std::vector<const EvalContext*>& contexts) {
    std::vector<double> out;
    out.reserve(genes.size());
    for (std::size_t i = 0; i < genes.size(); ++i)
      out.push_back(score(*genes[i], *contexts[i]));
    return out;
  }

  /// Upper bound of score() for the given target length (used by the
  /// neighborhood-search trigger's normalization and by reports). May be
  /// +infinity for unbounded graders.
  virtual double maxScore(std::size_t targetLength) const = 0;

  virtual std::string name() const = 0;
};

using FitnessPtr = std::shared_ptr<FitnessFunction>;

}  // namespace netsyn::fitness
