// Tokenization of DSL values for the neural fitness models.
//
// Integers are clamped into [-vmax, vmax-1] and shifted to token ids
// [0, 2*vmax); two marker tokens tag the value's type. Lists longer than
// `maxValueTokens` are truncated (DSL intermediate values are short; the
// paper's inputs are length <= ~10 lists). The resulting id sequences feed
// the embedding + LSTM encoders of Figure 2.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dsl/value.hpp"

namespace netsyn::fitness {

struct EncoderConfig {
  std::int32_t vmax = 64;          ///< values clamp to [-vmax, vmax-1]
  std::size_t maxValueTokens = 10; ///< list truncation length
};

class TokenEncoder {
 public:
  explicit TokenEncoder(EncoderConfig config = {}) : config_(config) {}

  const EncoderConfig& config() const { return config_; }

  /// 2*vmax value tokens + int marker + list marker.
  std::size_t vocabSize() const {
    return 2 * static_cast<std::size_t>(config_.vmax) + 2;
  }
  std::size_t intMarker() const {
    return 2 * static_cast<std::size_t>(config_.vmax);
  }
  std::size_t listMarker() const { return intMarker() + 1; }

  /// Token id of a single integer (clamped).
  std::size_t tokenOf(std::int32_t v) const;

  /// Token sequence of a value: [type marker, element tokens...].
  std::vector<std::size_t> encodeValue(const dsl::Value& v) const;

  /// Segment variants of encodeValue for the lane-view trace path: fill a
  /// caller-owned buffer (clearing it first) straight from an int cell or an
  /// SoA arena segment, with no Value in between. Token sequences are
  /// byte-identical to encodeValue on the equivalent Value.
  void encodeIntInto(std::int32_t v, std::vector<std::size_t>& out) const;
  void encodeListInto(const std::int32_t* xs, std::size_t n,
                      std::vector<std::size_t>& out) const;

  /// Token sequence of an input tuple: concatenated value encodings.
  std::vector<std::size_t> encodeInputs(
      const std::vector<dsl::Value>& inputs) const;

 private:
  EncoderConfig config_;
};

/// Width of the IO property-signature vector (see ioSummaryFeatures).
inline constexpr std::size_t kIoFeatureDim = 22;

/// Hand-computed property signature of one IO example (Odena & Sutton,
/// "Learning to Represent Programs with Property Signatures"): cheap
/// predicates relating the output to the first list input, e.g. "output is
/// sorted", "output is a sub-multiset of the input", element sign/parity/
/// divisibility fractions, and equality against a few single-function
/// transforms. At the paper's 4.2M-sample scale the network learns these
/// relations from raw tokens; at this repo's scale the signature supplies
/// them directly (DESIGN.md §5).
std::array<float, kIoFeatureDim> ioSummaryFeatures(
    const std::vector<dsl::Value>& inputs, const dsl::Value& output);

}  // namespace netsyn::fitness
