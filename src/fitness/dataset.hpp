// Training-data generation for the neural fitness functions (paper §4.2.1,
// §5).
//
// Each sample pairs a random *target* program P_e (which defines the spec
// S = {(I_j, O_j)}) with a random *candidate* program P_r executed on the
// same inputs to obtain traces. Labels are the oracle metrics CF / LCS
// between candidate and target, plus the target's function-presence vector
// for the FP model. As in the paper, candidates are constructed so that
// every possible CF (or LCS) value 0..L is equally represented.
#pragma once

#include <optional>
#include <vector>

#include "dsl/generator.hpp"
#include "dsl/program.hpp"
#include "dsl/spec.hpp"
#include "util/rng.hpp"

namespace netsyn::fitness {

/// One supervised example for the NN-FF.
struct Sample {
  dsl::Spec spec;          ///< examples of the (hidden) target program
  dsl::Program target;     ///< the target P_e (labels only; not a feature)
  dsl::Program candidate;  ///< the graded program P_r
  /// traces[i][k] = output of candidate statement k on spec input i.
  std::vector<std::vector<dsl::Value>> traces;
  std::size_t cf = 0;   ///< commonFunctions(candidate, target)
  std::size_t lcs = 0;  ///< longestCommonSubsequence(candidate, target)
  /// Multi-hot target-function presence, indexed by domain-local function
  /// index (vocabSize entries; 41 global-id slots for the list domain).
  std::vector<float> funcPresence;
};

/// Which oracle metric the label-balancing targets.
enum class BalanceMetric : std::uint8_t { CF, LCS };

struct DatasetConfig {
  std::size_t programLength = 5;  ///< length of targets and candidates
  std::size_t numExamples = 5;    ///< m IO examples per spec
  dsl::GeneratorConfig generator;  ///< carries the domain (null = list)
};

class DatasetBuilder {
 public:
  explicit DatasetBuilder(DatasetConfig config = {}) : config_(config) {}

  const DatasetConfig& config() const { return config_; }

  /// Builds a candidate with an exact prescribed metric value against
  /// `target`: `label` of the target's functions are kept (as a multiset
  /// sample for CF; as an order-preserving subsequence for LCS) and the
  /// remaining slots are filled with functions absent from the target.
  dsl::Program makeCandidateWithLabel(const dsl::Program& target,
                                      std::size_t label, BalanceMetric metric,
                                      util::Rng& rng) const;

  /// One full sample with the prescribed label (nullopt if generation of the
  /// target/spec fails, which is rare).
  std::optional<Sample> makeSample(std::size_t label, BalanceMetric metric,
                                   util::Rng& rng) const;

  /// `n` samples with labels cycling 0..programLength so every class is
  /// equally represented (paper §5: "each of the 0-5 possible CF/LCS values
  /// ... equally represented").
  std::vector<Sample> build(std::size_t n, BalanceMetric metric,
                            util::Rng& rng) const;

 private:
  DatasetConfig config_;
};

/// Runs `candidate` on every spec input, returning per-example traces.
std::vector<std::vector<dsl::Value>> tracesFor(const dsl::Program& candidate,
                                               const dsl::Spec& spec);

/// A pair of candidates graded against the *same* target/spec — the unit of
/// supervision for the §5.3.1 relative-ordering (ranking) ablation, where
/// the network is trained to order genes rather than score them.
struct PairSample {
  dsl::Spec spec;
  dsl::Program target;
  dsl::Program a;
  dsl::Program b;
  std::vector<std::vector<dsl::Value>> tracesA;
  std::vector<std::vector<dsl::Value>> tracesB;
  std::size_t metricA = 0;  ///< oracle metric of `a` vs target
  std::size_t metricB = 0;  ///< oracle metric of `b` vs target
};

/// Builds one pair with prescribed metric values for each side (shared
/// random target + spec). nullopt on generation failure.
std::optional<PairSample> makePairSample(const DatasetConfig& config,
                                         std::size_t labelA,
                                         std::size_t labelB,
                                         BalanceMetric metric,
                                         util::Rng& rng);

/// `n` pairs with (labelA, labelB) cycling over all ordered pairs with
/// labelA != labelB, so every margin is represented.
std::vector<PairSample> buildPairs(const DatasetConfig& config, std::size_t n,
                                   BalanceMetric metric, util::Rng& rng);

}  // namespace netsyn::fitness
