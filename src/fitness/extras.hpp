// The additional fitness-function designs of paper §5.3.1.
//
// Two-tier fitness: a first ("gate") network predicts whether a gene's
// fitness is zero; a second predicts the actual non-zero value. The paper
// reports that gate mispredictions eliminate enough good genes to reduce
// NetSyn's synthesis rate — this implementation lets the ablation bench
// reproduce that comparison.
//
// Bigram model: a multilabel network predicts which adjacent function
// *pairs* appear in the target (41x41 outputs, of which >99% are zero); a
// gene's fitness is the sum of its adjacent-pair probabilities. The paper
// found the resulting system comparable to DeepCoder with large drops on
// singleton programs.
#pragma once

#include <memory>

#include "fitness/fitness.hpp"
#include "fitness/model.hpp"

namespace netsyn::fitness {

/// Multi-hot target vector for the bigram model: entry a*41+b is 1 when the
/// program contains function a immediately followed by function b.
std::vector<float> bigramTargets(const dsl::Program& program);

/// Width of the bigram output layer (41 * 41).
inline constexpr std::size_t kBigramDim =
    dsl::kNumFunctions * dsl::kNumFunctions;

/// §5.3.1 two-tier fitness: gate (classes {zero, nonzero}) then value.
///
/// score = 0 when the gate predicts "zero fitness"; otherwise the value
/// model's class expectation. Both models use the trace branch.
class TwoTierFitness final : public FitnessFunction {
 public:
  /// `gate` must be a 2-class Classifier; `value` a Classifier whose classes
  /// are the fitness values (trained on non-zero-label samples).
  TwoTierFitness(std::shared_ptr<NnffModel> gate,
                 std::shared_ptr<NnffModel> value);

  double score(const dsl::Program& gene, const EvalContext& ctx) override;
  double maxScore(std::size_t) const override {
    return static_cast<double>(value_->config().numClasses - 1);
  }
  std::string name() const override { return "NN_TwoTier"; }

  /// Gate decision for diagnostics: P(fitness > 0 | gene).
  double gateProbability(const dsl::Program& gene,
                         const EvalContext& ctx) const;

 private:
  std::shared_ptr<NnffModel> gate_;
  std::shared_ptr<NnffModel> value_;
};

/// §5.3.1 bigram fitness: sum of predicted adjacent-pair probabilities.
/// IO-only like the FP map (the prediction conditions on the spec alone),
/// cached per spec.
class BigramFitness final : public FitnessFunction {
 public:
  explicit BigramFitness(std::shared_ptr<NnffModel> bigramModel);

  double score(const dsl::Program& gene, const EvalContext& ctx) override;
  double maxScore(std::size_t targetLength) const override {
    return targetLength == 0 ? 0.0 : static_cast<double>(targetLength - 1);
  }
  std::string name() const override { return "NN_Bigram"; }

  /// The full predicted pair-probability map for `spec` (cached).
  const std::vector<double>& pairMap(const dsl::Spec& spec);

 private:
  std::shared_ptr<NnffModel> model_;
  const dsl::Spec* cachedSpec_ = nullptr;
  std::vector<double> cachedMap_;
};

}  // namespace netsyn::fitness
