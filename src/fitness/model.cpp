#include "fitness/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "fitness/edit.hpp"

namespace netsyn::fitness {
namespace {

/// Per-step match features between a trace value and the example output:
/// [similarity = 1/(1+editDist), exact-match flag]. These give the model a
/// short path to the trace-vs-output comparison it must otherwise discover
/// from millions of samples (see DESIGN.md §5 on scaled-down training).
nn::Var stepMatchFeatures(const dsl::Value& traceValue,
                          const dsl::Value& output) {
  const auto dist = valueEditDistance(traceValue, output);
  nn::Matrix f(1, 2);
  f.at(0) = 1.0f / (1.0f + static_cast<float>(dist));
  f.at(1) = (dist == 0) ? 1.0f : 0.0f;
  return nn::constant(std::move(f));
}

}  // namespace

NnffModel::NnffModel(NnffConfig config)
    : config_(config), encoder_(config.encoder) {
  util::Rng rng(config_.seed);
  const std::size_t e = config_.embedDim;
  const std::size_t h = config_.hiddenDim;

  valueEmb_ = std::make_unique<nn::Embedding>(encoder_.vocabSize(), e,
                                              params_, rng);
  inputLstm_ = std::make_unique<nn::Lstm>(e, h, params_, rng);
  outputLstm_ = std::make_unique<nn::Lstm>(e, h, params_, rng);
  if (config_.useTrace) {
    funcEmb_ =
        std::make_unique<nn::Embedding>(dsl::kNumFunctions, e, params_, rng);
    traceLstm_ = std::make_unique<nn::Lstm>(e, h, params_, rng);
    stepLstm_ = std::make_unique<nn::Lstm>(e + h + 2, h, params_, rng);
    featProj_ = std::make_unique<nn::Linear>(4, h, params_, rng);
  }
  ioFeatProj_ = std::make_unique<nn::Linear>(kIoFeatureDim, h, params_, rng);
  combine1_ = std::make_unique<nn::Lstm>(h, h, params_, rng);
  combine2_ = std::make_unique<nn::Lstm>(h, h, params_, rng);
  exampleLstm_ = std::make_unique<nn::Lstm>(h, h, params_, rng);
  fc1_ = std::make_unique<nn::Linear>(h, h, params_, rng);
  fc2_ = std::make_unique<nn::Linear>(h, outDim(), params_, rng);
}

std::size_t NnffModel::outDim() const {
  switch (config_.head) {
    case HeadKind::Classifier:
      return config_.numClasses;
    case HeadKind::Multilabel:
      return config_.multilabelDim == 0 ? dsl::kNumFunctions
                                        : config_.multilabelDim;
    case HeadKind::Regression:
      return 1;
  }
  return 1;
}

nn::Var NnffModel::encodeTokens(const nn::Lstm& lstm,
                                const std::vector<std::size_t>& tokens) const {
  std::vector<nn::Var> seq;
  seq.reserve(tokens.size());
  for (std::size_t t : tokens) seq.push_back(valueEmb_->lookup(t));
  return lstm.encode(seq);
}

nn::Var NnffModel::exampleVector(const dsl::IOExample& example,
                                 const dsl::Program* candidate,
                                 const std::vector<dsl::Value>* trace) const {
  const nn::Var hIn =
      encodeTokens(*inputLstm_, encoder_.encodeInputs(example.inputs));
  const nn::Var hOut =
      encodeTokens(*outputLstm_, encoder_.encodeValue(example.output));

  // IO property signature (encoding.hpp): supplies the input-output
  // relations (sortedness, subset-ness, parity...) the paper's model learns
  // from its 4.2M-sample corpus.
  const auto ioFeats = ioSummaryFeatures(example.inputs, example.output);
  nn::Matrix ioF(1, kIoFeatureDim);
  for (std::size_t i = 0; i < kIoFeatureDim; ++i) ioF.at(i) = ioFeats[i];
  const nn::Var hIoFeat =
      nn::tanhOp(ioFeatProj_->forward(nn::constant(std::move(ioF))));

  std::vector<nn::Var> pieces = {hIn, hOut, hIoFeat};
  if (config_.useTrace) {
    if (candidate == nullptr || trace == nullptr)
      throw std::invalid_argument(
          "NnffModel: trace branch enabled but no candidate/trace given");
    if (trace->size() != candidate->length())
      throw std::invalid_argument("NnffModel: trace length != program length");
    std::vector<nn::Var> steps;
    steps.reserve(candidate->length());
    std::size_t exactSteps = 0;
    for (std::size_t k = 0; k < candidate->length(); ++k) {
      const nn::Var fVec = funcEmb_->lookup(candidate->at(k));
      const nn::Var tVec =
          encodeTokens(*traceLstm_, encoder_.encodeValue((*trace)[k]));
      const nn::Var mVec = stepMatchFeatures((*trace)[k], example.output);
      if ((*trace)[k] == example.output) ++exactSteps;
      steps.push_back(nn::concatCols(nn::concatCols(fVec, tVec), mVec));
    }
    const nn::Var hProg = stepLstm_->encode(steps);
    pieces.push_back(hProg);
    // Multiplicative matching between the output encoding and the program
    // encoding (interaction term the combiner LSTMs cannot form on their
    // own), plus a projected example-level match summary. Both shorten the
    // path from "candidate reproduces the specified output" to the head.
    pieces.push_back(nn::mulElem(hOut, hProg));
    const dsl::Value& finalValue = candidate->empty()
                                       ? dsl::Value::defaultFor(dsl::Type::List)
                                       : trace->back();
    const auto finalDist = valueEditDistance(finalValue, example.output);
    nn::Matrix g(1, 4);
    g.at(0) = 1.0f / (1.0f + static_cast<float>(finalDist));
    g.at(1) = (finalDist == 0) ? 1.0f : 0.0f;
    g.at(2) = (finalValue.type() == example.output.type()) ? 1.0f : 0.0f;
    g.at(3) = candidate->empty()
                  ? 0.0f
                  : static_cast<float>(exactSteps) /
                        static_cast<float>(candidate->length());
    pieces.push_back(nn::tanhOp(featProj_->forward(nn::constant(std::move(g)))));
  }

  // Two stacked combiner LSTMs (Figure 2a): layer 1 produces a hidden vector
  // per piece; layer 2 consumes those and its final state is H_i.
  return combine2_->encode(combine1_->encodeAll(pieces));
}

nn::Var NnffModel::head(const nn::Var& h) const {
  return fc2_->forward(nn::reluOp(fc1_->forward(h)));
}

nn::Var NnffModel::forward(
    const dsl::Spec& spec, const dsl::Program& candidate,
    const std::vector<std::vector<dsl::Value>>& traces) const {
  if (traces.size() < std::min(spec.size(), config_.maxExamples))
    throw std::invalid_argument("NnffModel: one trace per example required");
  std::vector<nn::Var> His;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  His.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    His.push_back(
        exampleVector(spec.examples[i], &candidate, &traces[i]));
  }
  return head(exampleLstm_->encode(His));
}

void NnffModel::exampleVectorFast(const dsl::IOExample& example,
                                  const dsl::Program* candidate,
                                  const std::vector<dsl::Value>* trace,
                                  float* out) const {
  const std::size_t h = config_.hiddenDim;
  const std::size_t e = config_.embedDim;

  // Piece buffers (at most 6 pieces of width h).
  std::vector<float> hIn(h), hOut(h), hProg(h), hMul(h), hFeat(h), hIoF(h);
  nn::lstmEncodeTokensFast(*inputLstm_, *valueEmb_,
                           encoder_.encodeInputs(example.inputs), hIn.data(),
                           scratch_);
  nn::lstmEncodeTokensFast(*outputLstm_, *valueEmb_,
                           encoder_.encodeValue(example.output), hOut.data(),
                           scratch_);
  const auto ioFeats = ioSummaryFeatures(example.inputs, example.output);
  nn::linearForwardFast(*ioFeatProj_, ioFeats.data(), hIoF.data());
  for (std::size_t j = 0; j < h; ++j) hIoF[j] = std::tanh(hIoF[j]);

  std::vector<const float*> pieces = {hIn.data(), hOut.data(), hIoF.data()};
  std::vector<float> stepBuf;
  if (config_.useTrace) {
    // Program branch: per step, x_k = [funcEmb | traceEnc | match feats].
    const std::size_t stepWidth = e + h + 2;
    const std::size_t len = candidate->length();
    stepBuf.resize(stepWidth * std::max<std::size_t>(len, 1));
    std::vector<const float*> steps;
    steps.reserve(len);
    std::size_t exactSteps = 0;
    for (std::size_t k = 0; k < len; ++k) {
      float* x = stepBuf.data() + k * stepWidth;
      const float* fRow = funcEmb_->table().data() +
                          static_cast<std::size_t>(candidate->at(k)) * e;
      std::copy(fRow, fRow + e, x);
      nn::lstmEncodeTokensFast(*traceLstm_, *valueEmb_,
                               encoder_.encodeValue((*trace)[k]), x + e,
                               scratch_);
      const auto dist = valueEditDistance((*trace)[k], example.output);
      x[e + h] = 1.0f / (1.0f + static_cast<float>(dist));
      x[e + h + 1] = (dist == 0) ? 1.0f : 0.0f;
      if (dist == 0) ++exactSteps;
      steps.push_back(x);
    }
    nn::lstmEncodeVectorsFast(*stepLstm_, steps, hProg.data(), scratch_);
    for (std::size_t j = 0; j < h; ++j) hMul[j] = hOut[j] * hProg[j];
    const dsl::Value& finalValue =
        len == 0 ? dsl::Value::defaultFor(dsl::Type::List) : trace->back();
    const auto finalDist = valueEditDistance(finalValue, example.output);
    float g[4];
    g[0] = 1.0f / (1.0f + static_cast<float>(finalDist));
    g[1] = (finalDist == 0) ? 1.0f : 0.0f;
    g[2] = (finalValue.type() == example.output.type()) ? 1.0f : 0.0f;
    g[3] = len == 0 ? 0.0f
                    : static_cast<float>(exactSteps) / static_cast<float>(len);
    nn::linearForwardFast(*featProj_, g, hFeat.data());
    for (std::size_t j = 0; j < h; ++j) hFeat[j] = std::tanh(hFeat[j]);
    pieces.push_back(hProg.data());
    pieces.push_back(hMul.data());
    pieces.push_back(hFeat.data());
  }

  // Stacked combiners: layer 1 emits a hidden per piece, layer 2 fuses.
  std::vector<float> l1(h * pieces.size());
  {
    std::vector<float> hState(h, 0.0f), cState(h, 0.0f);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      nn::lstmStepFast(*combine1_, pieces[i], hState.data(), cState.data(),
                       scratch_);
      std::copy(hState.begin(), hState.end(), l1.begin() + i * h);
    }
  }
  std::vector<const float*> l1Ptrs;
  for (std::size_t i = 0; i < pieces.size(); ++i)
    l1Ptrs.push_back(l1.data() + i * h);
  nn::lstmEncodeVectorsFast(*combine2_, l1Ptrs, out, scratch_);
}

std::vector<float> NnffModel::forwardFast(
    const dsl::Spec& spec, const dsl::Program& candidate,
    const std::vector<std::vector<dsl::Value>>& traces) const {
  if (traces.size() < std::min(spec.size(), config_.maxExamples))
    throw std::invalid_argument("NnffModel: one trace per example required");
  const std::size_t h = config_.hiddenDim;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  std::vector<float> His(h * std::max<std::size_t>(m, 1));
  std::vector<const float*> hiPtrs;
  for (std::size_t i = 0; i < m; ++i) {
    exampleVectorFast(spec.examples[i], &candidate, &traces[i],
                      His.data() + i * h);
    hiPtrs.push_back(His.data() + i * h);
  }
  std::vector<float> fused(h);
  nn::lstmEncodeVectorsFast(*exampleLstm_, hiPtrs, fused.data(), scratch_);
  std::vector<float> hidden(fc1_->outDim());
  nn::linearForwardFast(*fc1_, fused.data(), hidden.data());
  nn::reluFast(hidden.data(), hidden.size());
  std::vector<float> logits(fc2_->outDim());
  nn::linearForwardFast(*fc2_, hidden.data(), logits.data());
  return logits;
}

std::vector<float> NnffModel::forwardIOOnlyFast(const dsl::Spec& spec) const {
  if (config_.useTrace)
    throw std::logic_error(
        "NnffModel::forwardIOOnlyFast requires useTrace=false");
  const std::size_t h = config_.hiddenDim;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  std::vector<float> His(h * std::max<std::size_t>(m, 1));
  std::vector<const float*> hiPtrs;
  for (std::size_t i = 0; i < m; ++i) {
    exampleVectorFast(spec.examples[i], nullptr, nullptr, His.data() + i * h);
    hiPtrs.push_back(His.data() + i * h);
  }
  std::vector<float> fused(h);
  nn::lstmEncodeVectorsFast(*exampleLstm_, hiPtrs, fused.data(), scratch_);
  std::vector<float> hidden(fc1_->outDim());
  nn::linearForwardFast(*fc1_, fused.data(), hidden.data());
  nn::reluFast(hidden.data(), hidden.size());
  std::vector<float> logits(fc2_->outDim());
  nn::linearForwardFast(*fc2_, hidden.data(), logits.data());
  return logits;
}

nn::Var NnffModel::forwardIOOnly(const dsl::Spec& spec) const {
  if (config_.useTrace)
    throw std::logic_error(
        "NnffModel::forwardIOOnly requires a model built with useTrace=false");
  std::vector<nn::Var> His;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  His.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    His.push_back(exampleVector(spec.examples[i], nullptr, nullptr));
  return head(exampleLstm_->encode(His));
}

}  // namespace netsyn::fitness
