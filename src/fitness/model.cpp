#include "fitness/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsl/domain.hpp"
#include "dsl/interpreter.hpp"
#include "fitness/edit.hpp"

namespace netsyn::fitness {
namespace {

/// Per-step match features between a trace value and the example output:
/// [similarity = 1/(1+editDist), exact-match flag]. These give the model a
/// short path to the trace-vs-output comparison it must otherwise discover
/// from millions of samples (see DESIGN.md §5 on scaled-down training).
nn::Var stepMatchFeatures(const dsl::Value& traceValue,
                          const dsl::Value& output) {
  const auto dist = valueEditDistance(traceValue, output);
  nn::Matrix f(1, 2);
  f.at(0) = 1.0f / (1.0f + static_cast<float>(dist));
  f.at(1) = (dist == 0) ? 1.0f : 0.0f;
  return nn::constant(std::move(f));
}

/// 64-bit FNV-1a over (type tag + payload words). The lane-view path
/// fingerprints arena segments with the segment helpers below; they must
/// stay byte-for-byte identical to valueFingerprint so both paths hit the
/// same memo cells (that identity is what makes the encoded scores bitwise
/// equal to the scalar path's).
struct FnvMixer {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t x) {
    for (std::size_t b = 0; b < 8; ++b) {
      h ^= (x >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
};

std::uint64_t laneIntFingerprint(std::int32_t v) {
  FnvMixer f;
  f.mix(static_cast<std::uint64_t>(dsl::Type::Int));
  f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  return f.h;
}

std::uint64_t laneListFingerprint(const std::int32_t* xs, std::size_t n) {
  FnvMixer f;
  f.mix(static_cast<std::uint64_t>(dsl::Type::List));
  f.mix(n);
  for (std::size_t i = 0; i < n; ++i)
    f.mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(xs[i])));
  return f.h;
}

/// Fingerprint of a DSL value; segment helpers above are its two cases.
std::uint64_t valueFingerprint(const dsl::Value& v) {
  if (v.isInt()) return laneIntFingerprint(v.asInt());
  const auto& xs = v.asList();
  return laneListFingerprint(xs.data(), xs.size());
}

/// Combined key of the edit-distance memo (trace fp mixed with output fp).
std::uint64_t editKey(std::uint64_t traceFp, std::uint64_t outputFp) {
  std::uint64_t key = traceFp;
  key ^= outputFp + 0x9e3779b97f4a7c15ULL + (key << 6) + (key >> 2);
  return key;
}

}  // namespace

NnffModel::NnffModel(NnffConfig config)
    : config_(config),
      resolvedDomain_(&dsl::resolveDomain(config.domain)),
      encoder_(config.encoder) {
  util::Rng rng(config_.seed);
  const std::size_t e = config_.embedDim;
  const std::size_t h = config_.hiddenDim;

  valueEmb_ = std::make_unique<nn::Embedding>(encoder_.vocabSize(), e,
                                              params_, rng);
  inputLstm_ = std::make_unique<nn::Lstm>(e, h, params_, rng);
  outputLstm_ = std::make_unique<nn::Lstm>(e, h, params_, rng);
  if (config_.useTrace) {
    funcEmb_ =
        std::make_unique<nn::Embedding>(funcVocabSize(), e, params_, rng);
    traceLstm_ = std::make_unique<nn::Lstm>(e, h, params_, rng);
    stepLstm_ = std::make_unique<nn::Lstm>(e + h + 2, h, params_, rng);
    featProj_ = std::make_unique<nn::Linear>(4, h, params_, rng);
  }
  ioFeatProj_ = std::make_unique<nn::Linear>(kIoFeatureDim, h, params_, rng);
  combine1_ = std::make_unique<nn::Lstm>(h, h, params_, rng);
  combine2_ = std::make_unique<nn::Lstm>(h, h, params_, rng);
  exampleLstm_ = std::make_unique<nn::Lstm>(h, h, params_, rng);
  fc1_ = std::make_unique<nn::Linear>(h, h, params_, rng);
  fc2_ = std::make_unique<nn::Linear>(h, outDim(), params_, rng);
}

std::size_t NnffModel::outDim() const {
  switch (config_.head) {
    case HeadKind::Classifier:
      return config_.numClasses;
    case HeadKind::Multilabel:
      return config_.multilabelDim == 0 ? funcVocabSize()
                                        : config_.multilabelDim;
    case HeadKind::Regression:
      return 1;
  }
  return 1;
}

std::size_t NnffModel::funcVocabSize() const {
  return resolvedDomain_->vocabSize();
}

std::size_t NnffModel::funcRow(dsl::FuncId id) const {
  return resolvedDomain_->localIndex(id);
}

nn::Var NnffModel::encodeTokens(const nn::Lstm& lstm,
                                const std::vector<std::size_t>& tokens) const {
  std::vector<nn::Var> seq;
  seq.reserve(tokens.size());
  for (std::size_t t : tokens) seq.push_back(valueEmb_->lookup(t));
  return lstm.encode(seq);
}

nn::Var NnffModel::exampleVector(const dsl::IOExample& example,
                                 const dsl::Program* candidate,
                                 const std::vector<dsl::Value>* trace) const {
  const nn::Var hIn =
      encodeTokens(*inputLstm_, encoder_.encodeInputs(example.inputs));
  const nn::Var hOut =
      encodeTokens(*outputLstm_, encoder_.encodeValue(example.output));

  // IO property signature (encoding.hpp): supplies the input-output
  // relations (sortedness, subset-ness, parity...) the paper's model learns
  // from its 4.2M-sample corpus.
  const auto ioFeats = ioSummaryFeatures(example.inputs, example.output);
  nn::Matrix ioF(1, kIoFeatureDim);
  for (std::size_t i = 0; i < kIoFeatureDim; ++i) ioF.at(i) = ioFeats[i];
  const nn::Var hIoFeat =
      nn::tanhOp(ioFeatProj_->forward(nn::constant(std::move(ioF))));

  std::vector<nn::Var> pieces = {hIn, hOut, hIoFeat};
  if (config_.useTrace) {
    if (candidate == nullptr || trace == nullptr)
      throw std::invalid_argument(
          "NnffModel: trace branch enabled but no candidate/trace given");
    if (trace->size() != candidate->length())
      throw std::invalid_argument("NnffModel: trace length != program length");
    std::vector<nn::Var> steps;
    steps.reserve(candidate->length());
    std::size_t exactSteps = 0;
    for (std::size_t k = 0; k < candidate->length(); ++k) {
      const nn::Var fVec = funcEmb_->lookup(funcRow(candidate->at(k)));
      const nn::Var tVec =
          encodeTokens(*traceLstm_, encoder_.encodeValue((*trace)[k]));
      const nn::Var mVec = stepMatchFeatures((*trace)[k], example.output);
      if ((*trace)[k] == example.output) ++exactSteps;
      steps.push_back(nn::concatCols(nn::concatCols(fVec, tVec), mVec));
    }
    const nn::Var hProg = stepLstm_->encode(steps);
    pieces.push_back(hProg);
    // Multiplicative matching between the output encoding and the program
    // encoding (interaction term the combiner LSTMs cannot form on their
    // own), plus a projected example-level match summary. Both shorten the
    // path from "candidate reproduces the specified output" to the head.
    pieces.push_back(nn::mulElem(hOut, hProg));
    const dsl::Value& finalValue = candidate->empty()
                                       ? dsl::Value::defaultFor(dsl::Type::List)
                                       : trace->back();
    const auto finalDist = valueEditDistance(finalValue, example.output);
    nn::Matrix g(1, 4);
    g.at(0) = 1.0f / (1.0f + static_cast<float>(finalDist));
    g.at(1) = (finalDist == 0) ? 1.0f : 0.0f;
    g.at(2) = (finalValue.type() == example.output.type()) ? 1.0f : 0.0f;
    g.at(3) = candidate->empty()
                  ? 0.0f
                  : static_cast<float>(exactSteps) /
                        static_cast<float>(candidate->length());
    pieces.push_back(nn::tanhOp(featProj_->forward(nn::constant(std::move(g)))));
  }

  // Two stacked combiner LSTMs (Figure 2a): layer 1 produces a hidden vector
  // per piece; layer 2 consumes those and its final state is H_i.
  return combine2_->encode(combine1_->encodeAll(pieces));
}

nn::Var NnffModel::head(const nn::Var& h) const {
  return fc2_->forward(nn::reluOp(fc1_->forward(h)));
}

nn::Var NnffModel::forward(
    const dsl::Spec& spec, const dsl::Program& candidate,
    const std::vector<std::vector<dsl::Value>>& traces) const {
  if (traces.size() < std::min(spec.size(), config_.maxExamples))
    throw std::invalid_argument("NnffModel: one trace per example required");
  std::vector<nn::Var> His;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  His.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    His.push_back(
        exampleVector(spec.examples[i], &candidate, &traces[i]));
  }
  return head(exampleLstm_->encode(His));
}

void NnffModel::exampleVectorFast(const dsl::IOExample& example,
                                  const dsl::Program* candidate,
                                  const std::vector<dsl::Value>* trace,
                                  float* out) const {
  const std::size_t h = config_.hiddenDim;
  const std::size_t e = config_.embedDim;

  // Piece buffers (at most 6 pieces of width h).
  std::vector<float> hIn(h), hOut(h), hProg(h), hMul(h), hFeat(h), hIoF(h);
  nn::lstmEncodeTokensFast(*inputLstm_, *valueEmb_,
                           encoder_.encodeInputs(example.inputs), hIn.data(),
                           scratch_);
  nn::lstmEncodeTokensFast(*outputLstm_, *valueEmb_,
                           encoder_.encodeValue(example.output), hOut.data(),
                           scratch_);
  const auto ioFeats = ioSummaryFeatures(example.inputs, example.output);
  nn::linearForwardFast(*ioFeatProj_, ioFeats.data(), hIoF.data());
  for (std::size_t j = 0; j < h; ++j) hIoF[j] = std::tanh(hIoF[j]);

  std::vector<const float*> pieces = {hIn.data(), hOut.data(), hIoF.data()};
  std::vector<float> stepBuf;
  if (config_.useTrace) {
    // Program branch: per step, x_k = [funcEmb | traceEnc | match feats].
    const std::size_t stepWidth = e + h + 2;
    const std::size_t len = candidate->length();
    const std::uint64_t outputFp = valueFingerprint(example.output);
    stepBuf.resize(stepWidth * std::max<std::size_t>(len, 1));
    std::vector<const float*> steps;
    steps.reserve(len);
    std::size_t exactSteps = 0;
    for (std::size_t k = 0; k < len; ++k) {
      float* x = stepBuf.data() + k * stepWidth;
      const float* fRow =
          funcEmb_->table().data() + funcRow(candidate->at(k)) * e;
      std::copy(fRow, fRow + e, x);
      const std::uint64_t tvFp = valueFingerprint((*trace)[k]);
      const auto& tEnc = traceEncodingMemo((*trace)[k], tvFp);
      std::copy(tEnc.begin(), tEnc.end(), x + e);
      const auto dist =
          editDistanceMemo((*trace)[k], tvFp, outputFp, example.output);
      x[e + h] = 1.0f / (1.0f + static_cast<float>(dist));
      x[e + h + 1] = (dist == 0) ? 1.0f : 0.0f;
      if (dist == 0) ++exactSteps;
      steps.push_back(x);
    }
    nn::lstmEncodeVectorsFast(*stepLstm_, steps, hProg.data(), scratch_);
    for (std::size_t j = 0; j < h; ++j) hMul[j] = hOut[j] * hProg[j];
    const dsl::Value& finalValue =
        len == 0 ? dsl::kEmptyListValue : trace->back();
    const auto finalDist = editDistanceMemo(
        finalValue, valueFingerprint(finalValue), outputFp, example.output);
    float g[4];
    g[0] = 1.0f / (1.0f + static_cast<float>(finalDist));
    g[1] = (finalDist == 0) ? 1.0f : 0.0f;
    g[2] = (finalValue.type() == example.output.type()) ? 1.0f : 0.0f;
    g[3] = len == 0 ? 0.0f
                    : static_cast<float>(exactSteps) / static_cast<float>(len);
    nn::linearForwardFast(*featProj_, g, hFeat.data());
    for (std::size_t j = 0; j < h; ++j) hFeat[j] = std::tanh(hFeat[j]);
    pieces.push_back(hProg.data());
    pieces.push_back(hMul.data());
    pieces.push_back(hFeat.data());
  }

  // Stacked combiners: layer 1 emits a hidden per piece, layer 2 fuses.
  std::vector<float> l1(h * pieces.size());
  {
    std::vector<float> hState(h, 0.0f), cState(h, 0.0f);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      nn::lstmStepFast(*combine1_, pieces[i], hState.data(), cState.data(),
                       scratch_);
      std::copy(hState.begin(), hState.end(), l1.begin() + i * h);
    }
  }
  std::vector<const float*> l1Ptrs;
  for (std::size_t i = 0; i < pieces.size(); ++i)
    l1Ptrs.push_back(l1.data() + i * h);
  nn::lstmEncodeVectorsFast(*combine2_, l1Ptrs, out, scratch_);
}

std::vector<float> NnffModel::forwardFast(
    const dsl::Spec& spec, const dsl::Program& candidate,
    const std::vector<std::vector<dsl::Value>>& traces) const {
  if (traces.size() < std::min(spec.size(), config_.maxExamples))
    throw std::invalid_argument("NnffModel: one trace per example required");
  const std::size_t h = config_.hiddenDim;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  std::vector<float> His(h * std::max<std::size_t>(m, 1));
  std::vector<const float*> hiPtrs;
  for (std::size_t i = 0; i < m; ++i) {
    exampleVectorFast(spec.examples[i], &candidate, &traces[i],
                      His.data() + i * h);
    hiPtrs.push_back(His.data() + i * h);
  }
  std::vector<float> fused(h);
  nn::lstmEncodeVectorsFast(*exampleLstm_, hiPtrs, fused.data(), scratch_);
  std::vector<float> hidden(fc1_->outDim());
  nn::linearForwardFast(*fc1_, fused.data(), hidden.data());
  nn::reluFast(hidden.data(), hidden.size());
  std::vector<float> logits(fc2_->outDim());
  nn::linearForwardFast(*fc2_, hidden.data(), logits.data());
  return logits;
}

std::vector<float> NnffModel::forwardIOOnlyFast(const dsl::Spec& spec) const {
  if (config_.useTrace)
    throw std::logic_error(
        "NnffModel::forwardIOOnlyFast requires useTrace=false");
  const std::size_t h = config_.hiddenDim;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  std::vector<float> His(h * std::max<std::size_t>(m, 1));
  std::vector<const float*> hiPtrs;
  for (std::size_t i = 0; i < m; ++i) {
    exampleVectorFast(spec.examples[i], nullptr, nullptr, His.data() + i * h);
    hiPtrs.push_back(His.data() + i * h);
  }
  std::vector<float> fused(h);
  nn::lstmEncodeVectorsFast(*exampleLstm_, hiPtrs, fused.data(), scratch_);
  std::vector<float> hidden(fc1_->outDim());
  nn::linearForwardFast(*fc1_, fused.data(), hidden.data());
  nn::reluFast(hidden.data(), hidden.size());
  std::vector<float> logits(fc2_->outDim());
  nn::linearForwardFast(*fc2_, hidden.data(), logits.data());
  return logits;
}

const std::vector<float>* NnffModel::findTraceMemo(std::uint64_t key) const {
  const auto it = traceMemo_.find(key);
  if (it != traceMemo_.end()) {
    ++memoStats_.traceHits;
    return &it->second;
  }
  const auto pit = traceMemoPrev_.find(key);
  if (pit != traceMemoPrev_.end()) {
    ++memoStats_.traceHits;
    // Promote previous-generation hits so the working set survives the next
    // rotation. Node extraction moves the element wholesale — the mapped
    // vector's heap buffer (and thus the returned reference) stays put.
    auto node = traceMemoPrev_.extract(pit);
    return &traceMemo_.insert(std::move(node)).position->second;
  }
  ++memoStats_.traceMisses;
  return nullptr;
}

const std::vector<float>& NnffModel::insertTraceMemo(
    std::uint64_t key, const std::vector<std::size_t>& tokens) const {
  // Rotate generations at capacity: the current map becomes the previous
  // one (whose stale entries are dropped, their bucket array recycled), so
  // recently touched entries stay findable instead of being thrown away
  // wholesale. Live memory is bounded by 2x memoCapacity_ entries.
  if (traceMemo_.size() >= memoCapacity_) {
    std::swap(traceMemo_, traceMemoPrev_);
    traceMemo_.clear();
  }
  std::vector<float> h(config_.hiddenDim);
  nn::lstmEncodeTokensFast(*traceLstm_, *valueEmb_, tokens, h.data(),
                           scratch_);
  return traceMemo_.emplace(key, std::move(h)).first->second;
}

const std::vector<float>& NnffModel::traceEncodingMemo(
    const dsl::Value& value, std::uint64_t valueFp) const {
  // Keyed by the value's own fingerprint so a hit skips tokenization too
  // (two values that clamp/truncate to the same token sequence just occupy
  // two entries with equal encodings — correct either way).
  if (const auto* hit = findTraceMemo(valueFp)) return *hit;
  return insertTraceMemo(valueFp, encoder_.encodeValue(value));
}

const std::vector<float>& NnffModel::traceEncodingMemoSpan(
    std::uint64_t fp, bool isInt, const std::int32_t* xs,
    std::size_t n) const {
  if (const auto* hit = findTraceMemo(fp)) return *hit;
  // Miss: tokenize straight from the segment into a reused scratch buffer —
  // same token sequence encodeValue would produce for the equivalent Value.
  if (isInt)
    encoder_.encodeIntInto(xs[0], laneTokenScratch_);
  else
    encoder_.encodeListInto(xs, n, laneTokenScratch_);
  return insertTraceMemo(fp, laneTokenScratch_);
}

const std::size_t* NnffModel::findEditMemo(std::uint64_t key) const {
  const auto it = editMemo_.find(key);
  if (it != editMemo_.end()) {
    ++memoStats_.editHits;
    return &it->second;
  }
  const auto pit = editMemoPrev_.find(key);
  if (pit != editMemoPrev_.end()) {
    ++memoStats_.editHits;
    auto node = editMemoPrev_.extract(pit);
    return &editMemo_.insert(std::move(node)).position->second;
  }
  ++memoStats_.editMisses;
  return nullptr;
}

std::size_t NnffModel::editDistanceMemo(const dsl::Value& traceValue,
                                        std::uint64_t traceFp,
                                        std::uint64_t outputFp,
                                        const dsl::Value& output) const {
  const std::uint64_t key = editKey(traceFp, outputFp);
  if (const auto* hit = findEditMemo(key)) return *hit;
  if (editMemo_.size() >= memoCapacity_) {
    std::swap(editMemo_, editMemoPrev_);
    editMemo_.clear();
  }
  const std::size_t dist = valueEditDistance(traceValue, output);
  editMemo_.emplace(key, dist);
  return dist;
}

std::size_t NnffModel::editDistanceMemoSpan(
    std::uint64_t traceFp, std::uint64_t outputFp, const std::int32_t* xs,
    std::size_t n, const std::vector<std::int32_t>& outToks) const {
  const std::uint64_t key = editKey(traceFp, outputFp);
  if (const auto* hit = findEditMemo(key)) return *hit;
  if (editMemo_.size() >= memoCapacity_) {
    std::swap(editMemo_, editMemoPrev_);
    editMemo_.clear();
  }
  const std::size_t dist =
      editDistanceSpans(xs, n, outToks.data(), outToks.size());
  editMemo_.emplace(key, dist);
  return dist;
}

void NnffModel::setMemoCapacity(std::size_t cap) {
  memoCapacity_ = std::max<std::size_t>(cap, 1);
  traceMemo_.clear();
  traceMemoPrev_.clear();
  editMemo_.clear();
  editMemoPrev_.clear();
  memoStats_ = MemoStats{};
}

void NnffModel::beginLaneCapture(const dsl::Spec& spec) const {
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  laneOutputFps_.resize(m);
  laneOutputToks_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const dsl::Value& out = spec.examples[i].output;
    laneOutputFps_[i] = valueFingerprint(out);
    if (out.isList())
      laneOutputToks_[i] = out.asList();
    else
      laneOutputToks_[i].assign(1, out.asInt());
  }
  laneCaptureSpec_ = &spec;
}

void NnffModel::encodeLaneTrace(const dsl::Spec& spec,
                                const dsl::Program& candidate,
                                const dsl::LaneTraceView& view,
                                EncodedTrace& out) const {
  if (!config_.useTrace)
    throw std::logic_error("NnffModel::encodeLaneTrace requires useTrace=true");
  if (&spec != laneCaptureSpec_) beginLaneCapture(spec);
  if (view.steps != candidate.length())
    throw std::invalid_argument("NnffModel: trace length != program length");
  const std::size_t e = config_.embedDim;
  const std::size_t h = config_.hiddenDim;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  const std::size_t len = candidate.length();
  const std::size_t stepWidth = e + h + 2;
  out.length = len;
  out.examples = m;
  out.stepWidth = stepWidth;
  out.steps.resize(m * len * stepWidth);
  out.gfeat.resize(m * 4);

  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t outputFp = laneOutputFps_[i];
    const std::vector<std::int32_t>& outToks = laneOutputToks_[i];
    std::size_t exactSteps = 0;
    std::size_t lastDist = 0;
    dsl::Type lastType = dsl::Type::List;
    for (std::size_t k = 0; k < len; ++k) {
      float* x = out.steps.data() + (i * len + k) * stepWidth;
      const float* fRow =
          funcEmb_->table().data() + funcRow(candidate.at(k)) * e;
      std::copy(fRow, fRow + e, x);
      std::size_t dist;
      if (view.stepType(k) == dsl::Type::Int) {
        const std::int32_t v = view.intAt(k, i);
        const std::uint64_t tvFp = laneIntFingerprint(v);
        const auto& tEnc = traceEncodingMemoSpan(tvFp, /*isInt=*/true, &v, 1);
        std::copy(tEnc.begin(), tEnc.end(), x + e);
        dist = editDistanceMemoSpan(tvFp, outputFp, &v, 1, outToks);
        lastType = dsl::Type::Int;
      } else {
        std::size_t segLen = 0;
        const std::int32_t* seg = view.listAt(k, i, &segLen);
        const std::uint64_t tvFp = laneListFingerprint(seg, segLen);
        const auto& tEnc =
            traceEncodingMemoSpan(tvFp, /*isInt=*/false, seg, segLen);
        std::copy(tEnc.begin(), tEnc.end(), x + e);
        dist = editDistanceMemoSpan(tvFp, outputFp, seg, segLen, outToks);
        lastType = dsl::Type::List;
      }
      x[e + h] = 1.0f / (1.0f + static_cast<float>(dist));
      x[e + h + 1] = (dist == 0) ? 1.0f : 0.0f;
      if (dist == 0) ++exactSteps;
      lastDist = dist;
    }
    // Example-level features. An empty program's final value is the default
    // (empty) list; otherwise the last step's distance is reused — it was
    // just computed against the same memo key the scalar path probes.
    std::size_t finalDist;
    dsl::Type finalType;
    if (len == 0) {
      finalType = dsl::Type::List;
      finalDist = editDistanceMemoSpan(laneListFingerprint(nullptr, 0),
                                       outputFp, nullptr, 0, outToks);
    } else {
      finalType = lastType;
      finalDist = lastDist;
    }
    float* g = out.gfeat.data() + i * 4;
    g[0] = 1.0f / (1.0f + static_cast<float>(finalDist));
    g[1] = (finalDist == 0) ? 1.0f : 0.0f;
    g[2] = (finalType == spec.examples[i].output.type()) ? 1.0f : 0.0f;
    g[3] = len == 0 ? 0.0f
                    : static_cast<float>(exactSteps) / static_cast<float>(len);
  }
}

std::vector<std::vector<float>> NnffModel::predictBatchEncoded(
    const dsl::Spec& spec, const std::vector<const dsl::Program*>& candidates,
    const std::vector<const EncodedTrace*>& encoded) const {
  const std::size_t batch = candidates.size();
  if (batch == 0) return {};
  if (!config_.useTrace)
    throw std::logic_error(
        "NnffModel::predictBatchEncoded requires useTrace=true");
  if (encoded.size() != batch)
    throw std::invalid_argument("NnffModel: one encoded trace per candidate");
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  for (std::size_t b = 0; b < batch; ++b) {
    if (encoded[b] == nullptr || encoded[b]->examples < m)
      throw std::invalid_argument(
          "NnffModel: encoded trace covers too few examples");
  }
  return predictBatchImpl(spec, candidates, {}, &encoded);
}

std::vector<std::vector<float>> NnffModel::predictBatch(
    const dsl::Spec& spec, const std::vector<const dsl::Program*>& candidates,
    const std::vector<const std::vector<std::vector<dsl::Value>>*>& traces)
    const {
  const std::size_t batch = candidates.size();
  if (batch == 0) return {};
  if (config_.useTrace && traces.size() != batch)
    throw std::invalid_argument("NnffModel: one trace set per candidate");
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  std::vector<const std::vector<dsl::Value>*> table;
  if (config_.useTrace) {
    table.resize(batch * m);
    for (std::size_t b = 0; b < batch; ++b) {
      if (traces[b] == nullptr || traces[b]->size() < m)
        throw std::invalid_argument("NnffModel: one trace per example required");
      for (std::size_t i = 0; i < m; ++i) table[b * m + i] = &(*traces[b])[i];
    }
  }
  return predictBatchImpl(spec, candidates, table);
}

std::vector<std::vector<float>> NnffModel::predictBatchRuns(
    const dsl::Spec& spec, const std::vector<const dsl::Program*>& candidates,
    const std::vector<const std::vector<dsl::ExecResult>*>& runs) const {
  const std::size_t batch = candidates.size();
  if (batch == 0) return {};
  if (config_.useTrace && runs.size() != batch)
    throw std::invalid_argument("NnffModel: one run set per candidate");
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  std::vector<const std::vector<dsl::Value>*> table;
  if (config_.useTrace) {
    table.resize(batch * m);
    for (std::size_t b = 0; b < batch; ++b) {
      if (runs[b] == nullptr || runs[b]->size() < m)
        throw std::invalid_argument("NnffModel: one run per example required");
      for (std::size_t i = 0; i < m; ++i)
        table[b * m + i] = &(*runs[b])[i].trace;
    }
  }
  return predictBatchImpl(spec, candidates, table);
}

std::vector<std::vector<float>> NnffModel::predictBatchImpl(
    const dsl::Spec& spec, const std::vector<const dsl::Program*>& candidates,
    const std::vector<const std::vector<dsl::Value>*>& traceTable,
    const std::vector<const EncodedTrace*>* encoded) const {
  const std::size_t batch = candidates.size();
  const std::size_t h = config_.hiddenDim;
  const std::size_t e = config_.embedDim;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);

  // His: example-major blocks of B x h (block i feeds exampleLstm step i).
  std::vector<float> His(std::max<std::size_t>(m, 1) * batch * h);
  std::vector<float> hProg(batch * h), cProg(batch * h), hMul(batch * h),
      hFeat(batch * h);
  std::vector<float> h1s(h), c1s(h), h2s(h), c2s(h);
  std::vector<float> hC(batch * h), cC(batch * h), h2(batch * h),
      c2(batch * h);

  // Shared spec encodings, computed once for the whole population (the
  // scalar path recomputes these for every gene) and batched across the m
  // examples.
  std::vector<std::vector<std::size_t>> inTokens(m), outTokens(m);
  std::vector<float> ioFeatsAll(m * kIoFeatureDim);
  for (std::size_t i = 0; i < m; ++i) {
    const dsl::IOExample& example = spec.examples[i];
    inTokens[i] = encoder_.encodeInputs(example.inputs);
    outTokens[i] = encoder_.encodeValue(example.output);
    const auto feats = ioSummaryFeatures(example.inputs, example.output);
    std::copy(feats.begin(), feats.end(),
              ioFeatsAll.begin() + i * kIoFeatureDim);
  }
  std::vector<float> hInAll(m * h), hOutAll(m * h), hIoFAll(m * h);
  nn::lstmEncodeTokensBatchFast(*inputLstm_, *valueEmb_, inTokens,
                                hInAll.data(), scratch_);
  nn::lstmEncodeTokensBatchFast(*outputLstm_, *valueEmb_, outTokens,
                                hOutAll.data(), scratch_);
  nn::linearForwardBatchFast(*ioFeatProj_, ioFeatsAll.data(), m,
                             hIoFAll.data());
  for (float& v : hIoFAll) v = std::tanh(v);

  for (std::size_t i = 0; i < m; ++i) {
    const dsl::IOExample& example = spec.examples[i];
    const float* hIn = hInAll.data() + i * h;
    const float* hOut = hOutAll.data() + i * h;
    const float* hIoF = hIoFAll.data() + i * h;

    if (config_.useTrace) {
      // Program branch, batched over genes: step k runs all genes that are
      // at least k+1 long through stepLstm as one B x (e+h+2) block.
      const std::uint64_t outputFp =
          encoded ? 0 : valueFingerprint(example.output);
      const std::size_t stepWidth = e + h + 2;
      std::size_t maxLen = 0;
      for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t traceLen = encoded ? (*encoded)[b]->length
                                             : traceTable[b * m + i]->size();
        if (traceLen != candidates[b]->length())
          throw std::invalid_argument(
              "NnffModel: trace length != program length");
        maxLen = std::max(maxLen, candidates[b]->length());
      }
      std::vector<float> xStep(batch * stepWidth, 0.0f);
      std::vector<std::uint8_t> active(batch);
      std::vector<std::size_t> exactSteps(batch, 0);
      std::fill(hProg.begin(), hProg.end(), 0.0f);
      std::fill(cProg.begin(), cProg.end(), 0.0f);
      for (std::size_t k = 0; k < maxLen; ++k) {
        for (std::size_t b = 0; b < batch; ++b) {
          active[b] = k < candidates[b]->length() ? 1 : 0;
          if (!active[b]) continue;
          float* x = xStep.data() + b * stepWidth;
          if (encoded) {
            // Lane path: the full stepLstm input row was produced by
            // encodeLaneTrace; feed it verbatim (exactSteps is already
            // folded into the encoded example features).
            const EncodedTrace& et = *(*encoded)[b];
            const float* row =
                et.steps.data() + (i * et.length + k) * et.stepWidth;
            std::copy(row, row + stepWidth, x);
            continue;
          }
          const float* fRow =
              funcEmb_->table().data() + funcRow(candidates[b]->at(k)) * e;
          std::copy(fRow, fRow + e, x);
          const dsl::Value& tv = (*traceTable[b * m + i])[k];
          const std::uint64_t tvFp = valueFingerprint(tv);
          const auto& tEnc = traceEncodingMemo(tv, tvFp);
          std::copy(tEnc.begin(), tEnc.end(), x + e);
          const auto dist =
              editDistanceMemo(tv, tvFp, outputFp, example.output);
          x[e + h] = 1.0f / (1.0f + static_cast<float>(dist));
          x[e + h + 1] = (dist == 0) ? 1.0f : 0.0f;
          if (dist == 0) ++exactSteps[b];
        }
        nn::lstmStepBatchFast(*stepLstm_, xStep.data(), batch, hProg.data(),
                              cProg.data(), scratch_, active.data());
      }
      for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t j = 0; j < h; ++j)
          hMul[b * h + j] = hOut[j] * hProg[b * h + j];
      std::vector<float> g(batch * 4);
      for (std::size_t b = 0; b < batch; ++b) {
        if (encoded) {
          const EncodedTrace& et = *(*encoded)[b];
          std::copy(et.gfeat.data() + i * 4, et.gfeat.data() + (i + 1) * 4,
                    g.data() + b * 4);
          continue;
        }
        const std::size_t len = candidates[b]->length();
        const dsl::Value& finalValue =
            len == 0 ? dsl::kEmptyListValue : (*traceTable[b * m + i]).back();
        const auto finalDist = editDistanceMemo(
            finalValue, valueFingerprint(finalValue), outputFp,
            example.output);
        g[b * 4 + 0] = 1.0f / (1.0f + static_cast<float>(finalDist));
        g[b * 4 + 1] = (finalDist == 0) ? 1.0f : 0.0f;
        g[b * 4 + 2] =
            (finalValue.type() == example.output.type()) ? 1.0f : 0.0f;
        g[b * 4 + 3] = len == 0 ? 0.0f
                                : static_cast<float>(exactSteps[b]) /
                                      static_cast<float>(len);
      }
      nn::linearForwardBatchFast(*featProj_, g.data(), batch, hFeat.data());
      for (float& v : hFeat) v = std::tanh(v);
    }

    // Stacked combiners. The first three pieces are spec-level — identical
    // for every gene — so both combiner LSTMs advance through them once on a
    // single row; the resulting states are broadcast and the gene pieces run
    // batched. Layer 2 consumes layer 1's hidden right after each step
    // (equivalent to encodeAll + encode, without materializing the l1
    // sequence).
    std::fill(h1s.begin(), h1s.end(), 0.0f);
    std::fill(c1s.begin(), c1s.end(), 0.0f);
    std::fill(h2s.begin(), h2s.end(), 0.0f);
    std::fill(c2s.begin(), c2s.end(), 0.0f);
    const float* sharedPieces[3] = {hIn, hOut, hIoF};
    for (const float* piece : sharedPieces) {
      nn::lstmStepFast(*combine1_, piece, h1s.data(), c1s.data(), scratch_);
      nn::lstmStepFast(*combine2_, h1s.data(), h2s.data(), c2s.data(),
                       scratch_);
    }
    float* Hi = His.data() + i * batch * h;
    if (config_.useTrace) {
      for (std::size_t b = 0; b < batch; ++b) {
        std::copy(h1s.begin(), h1s.end(), hC.begin() + b * h);
        std::copy(c1s.begin(), c1s.end(), cC.begin() + b * h);
        std::copy(h2s.begin(), h2s.end(), h2.begin() + b * h);
        std::copy(c2s.begin(), c2s.end(), c2.begin() + b * h);
      }
      const float* genePieces[3] = {hProg.data(), hMul.data(), hFeat.data()};
      for (const float* piece : genePieces) {
        nn::lstmStepBatchFast(*combine1_, piece, batch, hC.data(), cC.data(),
                              scratch_);
        nn::lstmStepBatchFast(*combine2_, hC.data(), batch, h2.data(),
                              c2.data(), scratch_);
      }
      std::copy(h2.begin(), h2.end(), Hi);
    } else {
      for (std::size_t b = 0; b < batch; ++b)
        std::copy(h2s.begin(), h2s.end(), Hi + b * h);
    }
  }

  std::vector<const float*> hiPtrs(m);
  for (std::size_t i = 0; i < m; ++i) hiPtrs[i] = His.data() + i * batch * h;
  std::vector<float> fused(batch * h);
  nn::lstmEncodeVectorsBatchFast(*exampleLstm_, hiPtrs, batch, fused.data(),
                                 scratch_);
  std::vector<float> hidden(batch * fc1_->outDim());
  nn::linearForwardBatchFast(*fc1_, fused.data(), batch, hidden.data());
  nn::reluFast(hidden.data(), hidden.size());
  std::vector<float> logits(batch * fc2_->outDim());
  nn::linearForwardBatchFast(*fc2_, hidden.data(), batch, logits.data());

  std::vector<std::vector<float>> out(batch);
  const std::size_t od = fc2_->outDim();
  for (std::size_t b = 0; b < batch; ++b)
    out[b].assign(logits.begin() + b * od, logits.begin() + (b + 1) * od);
  return out;
}

std::unique_ptr<NnffModel> NnffModel::clone() const {
  auto copy = std::make_unique<NnffModel>(config_);
  const auto& src = params_.params();
  const auto& dst = copy->params_.params();
  for (std::size_t i = 0; i < src.size(); ++i)
    dst[i]->value() = src[i]->value();
  return copy;
}

nn::Var NnffModel::forwardIOOnly(const dsl::Spec& spec) const {
  if (config_.useTrace)
    throw std::logic_error(
        "NnffModel::forwardIOOnly requires a model built with useTrace=false");
  std::vector<nn::Var> His;
  const std::size_t m = std::min(spec.size(), config_.maxExamples);
  His.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    His.push_back(exampleVector(spec.examples[i], nullptr, nullptr));
  return head(exampleLstm_->encode(His));
}

}  // namespace netsyn::fitness
