#include "fitness/edit.hpp"

#include <algorithm>

namespace netsyn::fitness {
namespace {

std::vector<std::int32_t> tokensOf(const dsl::Value& v) {
  if (v.isList()) return v.asList();
  return {v.asInt()};
}

}  // namespace

std::size_t editDistanceSpans(const std::int32_t* xs, std::size_t n,
                              const std::int32_t* ys, std::size_t m) {
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<std::size_t> prev(m + 1), curr(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    curr[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (xs[i - 1] == ys[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

std::size_t valueEditDistance(const dsl::Value& a, const dsl::Value& b) {
  const auto xs = tokensOf(a);
  const auto ys = tokensOf(b);
  return editDistanceSpans(xs.data(), xs.size(), ys.data(), ys.size());
}

double EditDistanceFitness::score(const dsl::Program&,
                                  const EvalContext& ctx) {
  if (ctx.spec.examples.empty()) return 1.0;
  double total = 0.0;
  for (std::size_t j = 0; j < ctx.spec.examples.size(); ++j) {
    total += static_cast<double>(
        dist_(ctx.runs[j].output(), ctx.spec.examples[j].output));
  }
  const double meanDist = total / static_cast<double>(ctx.spec.size());
  return 1.0 / (1.0 + meanDist);
}

}  // namespace netsyn::fitness
