#include "fitness/corpus_io.hpp"

#include "dsl/domain.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace netsyn::fitness {
namespace {

constexpr char kMagic[4] = {'N', 'S', 'C', 'O'};
constexpr std::uint32_t kVersion = 1;

// ---- primitive writers/readers ---------------------------------------------

template <typename T>
void writePod(std::ofstream& f, T v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T readPod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!f) throw std::runtime_error("corpus file truncated");
  return v;
}

void writeValue(std::ofstream& f, const dsl::Value& v) {
  writePod<std::uint8_t>(f, v.isList() ? 1 : 0);
  if (v.isInt()) {
    writePod<std::int32_t>(f, v.asInt());
  } else {
    writePod<std::uint32_t>(f, static_cast<std::uint32_t>(v.asList().size()));
    for (std::int32_t x : v.asList()) writePod<std::int32_t>(f, x);
  }
}

dsl::Value readValue(std::ifstream& f) {
  const auto isList = readPod<std::uint8_t>(f);
  if (isList == 0) return dsl::Value(readPod<std::int32_t>(f));
  const auto n = readPod<std::uint32_t>(f);
  if (n > (1u << 24)) throw std::runtime_error("corpus list length corrupt");
  std::vector<std::int32_t> xs;
  xs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) xs.push_back(readPod<std::int32_t>(f));
  return dsl::Value(std::move(xs));
}

void writeProgram(std::ofstream& f, const dsl::Program& p) {
  writePod<std::uint32_t>(f, static_cast<std::uint32_t>(p.length()));
  for (dsl::FuncId id : p.functions()) writePod<std::uint8_t>(f, id);
}

dsl::Program readProgram(std::ifstream& f, const dsl::Domain& domain) {
  const auto n = readPod<std::uint32_t>(f);
  if (n > 4096) throw std::runtime_error("corpus program length corrupt");
  std::vector<dsl::FuncId> fns;
  fns.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto id = readPod<std::uint8_t>(f);
    if (id >= dsl::kTotalFunctions || !domain.contains(id))
      throw std::runtime_error("corpus function id outside domain '" +
                               domain.name + "'");
    fns.push_back(static_cast<dsl::FuncId>(id));
  }
  return dsl::Program(std::move(fns));
}

}  // namespace

void saveSamples(const std::vector<Sample>& samples,
                 const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("saveSamples: cannot open " + path);
  f.write(kMagic, 4);
  writePod<std::uint32_t>(f, kVersion);
  writePod<std::uint64_t>(f, samples.size());
  for (const Sample& s : samples) {
    writeProgram(f, s.target);
    writeProgram(f, s.candidate);
    writePod<std::uint32_t>(f, static_cast<std::uint32_t>(s.spec.size()));
    for (const auto& ex : s.spec.examples) {
      writePod<std::uint32_t>(f, static_cast<std::uint32_t>(ex.inputs.size()));
      for (const auto& in : ex.inputs) writeValue(f, in);
      writeValue(f, ex.output);
    }
    writePod<std::uint32_t>(f, static_cast<std::uint32_t>(s.traces.size()));
    for (const auto& trace : s.traces) {
      writePod<std::uint32_t>(f, static_cast<std::uint32_t>(trace.size()));
      for (const auto& v : trace) writeValue(f, v);
    }
    writePod<std::uint32_t>(f, static_cast<std::uint32_t>(s.cf));
    writePod<std::uint32_t>(f, static_cast<std::uint32_t>(s.lcs));
  }
  if (!f) throw std::runtime_error("saveSamples: write failed for " + path);
}

std::vector<Sample> loadSamples(const std::string& path,
                                const dsl::Domain* domain) {
  const dsl::Domain& dom = dsl::resolveDomain(domain);
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("loadSamples: cannot open " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("loadSamples: bad magic in " + path);
  const auto version = readPod<std::uint32_t>(f);
  if (version != kVersion)
    throw std::runtime_error("loadSamples: unsupported version in " + path);
  const auto count = readPod<std::uint64_t>(f);

  std::vector<Sample> samples;
  samples.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Sample s;
    s.target = readProgram(f, dom);
    s.candidate = readProgram(f, dom);
    const auto m = readPod<std::uint32_t>(f);
    s.spec.examples.reserve(m);
    for (std::uint32_t j = 0; j < m; ++j) {
      dsl::IOExample ex;
      const auto numInputs = readPod<std::uint32_t>(f);
      ex.inputs.reserve(numInputs);
      for (std::uint32_t k = 0; k < numInputs; ++k)
        ex.inputs.push_back(readValue(f));
      ex.output = readValue(f);
      s.spec.examples.push_back(std::move(ex));
    }
    const auto numTraces = readPod<std::uint32_t>(f);
    s.traces.reserve(numTraces);
    for (std::uint32_t j = 0; j < numTraces; ++j) {
      const auto len = readPod<std::uint32_t>(f);
      std::vector<dsl::Value> trace;
      trace.reserve(len);
      for (std::uint32_t k = 0; k < len; ++k) trace.push_back(readValue(f));
      s.traces.push_back(std::move(trace));
    }
    s.cf = readPod<std::uint32_t>(f);
    s.lcs = readPod<std::uint32_t>(f);
    // Function presence is derivable; rebuild rather than store.
    s.funcPresence.assign(dom.vocabSize(), 0.0f);
    for (dsl::FuncId id : s.target.functions())
      s.funcPresence[dom.localIndex(id)] = 1.0f;
    samples.push_back(std::move(s));
  }
  return samples;
}

}  // namespace netsyn::fitness
