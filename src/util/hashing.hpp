// Shared hashing primitives for stable, machine-independent placement:
// FNV-1a 64 (the checksum/key hash the durability layer already uses), the
// splitmix64 finalizer as a cheap 64-bit mixer, and rendezvous (highest-
// random-weight) hashing for fleet task placement.
//
// Rendezvous hashing is the fleet's determinism keystone: every (task key,
// host id) pair gets an independent pseudo-random weight, and the task
// belongs to the host with the highest weight among the *healthy* hosts.
// Removing a host therefore moves only the tasks that host owned — every
// other task keeps its owner — and the full preference order
// (rendezvousRank) tells a coordinator where a task goes next when its
// owner dies or sheds load. No coordination, no ring state: any process
// that knows the host-id list computes the same placement.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace netsyn::util {

/// FNV-1a 64 over a byte string.
std::uint64_t fnv1a64(std::string_view bytes);

/// splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
std::uint64_t mix64(std::uint64_t x);

/// Rendezvous weight of `keyHash` on `hostId` (exposed so tests can pin the
/// argmax identity).
std::uint64_t rendezvousWeight(std::uint64_t keyHash, std::uint64_t hostId);

/// Index into `hostIds` of the highest-weight host for `keyHash`. Ties
/// break toward the lower index (deterministic for any input). Throws
/// std::invalid_argument when `hostIds` is empty.
std::size_t rendezvousOwner(std::uint64_t keyHash,
                            const std::vector<std::uint64_t>& hostIds);

/// Full preference order for `keyHash`: indices into `hostIds` sorted by
/// descending weight (owner first). rank[0] == rendezvousOwner(...), and
/// erasing any host from the list leaves the relative order of the rest
/// unchanged — the failover property the fleet coordinator leans on.
std::vector<std::size_t> rendezvousRank(
    std::uint64_t keyHash, const std::vector<std::uint64_t>& hostIds);

}  // namespace netsyn::util
