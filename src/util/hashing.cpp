#include "util/hashing.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace netsyn::util {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t rendezvousWeight(std::uint64_t keyHash, std::uint64_t hostId) {
  // Mix twice so neither operand can cancel structure in the other: a
  // single xor-then-mix would give correlated weights for host ids that
  // differ from each other by the same xor delta as two task keys.
  return mix64(mix64(keyHash ^ 0x8bad5eedc0ffee42ull) ^ hostId);
}

std::size_t rendezvousOwner(std::uint64_t keyHash,
                            const std::vector<std::uint64_t>& hostIds) {
  if (hostIds.empty())
    throw std::invalid_argument("rendezvousOwner: no hosts");
  std::size_t best = 0;
  std::uint64_t bestW = rendezvousWeight(keyHash, hostIds[0]);
  for (std::size_t i = 1; i < hostIds.size(); ++i) {
    const std::uint64_t w = rendezvousWeight(keyHash, hostIds[i]);
    if (w > bestW) {
      best = i;
      bestW = w;
    }
  }
  return best;
}

std::vector<std::size_t> rendezvousRank(
    std::uint64_t keyHash, const std::vector<std::uint64_t>& hostIds) {
  std::vector<std::size_t> order(hostIds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return rendezvousWeight(keyHash, hostIds[a]) >
                            rendezvousWeight(keyHash, hostIds[b]);
                   });
  return order;
}

}  // namespace netsyn::util
