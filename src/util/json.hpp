// Minimal strict JSON: the one parser every subsystem that speaks JSON
// shares — experiment configs (harness/config.cpp), the synthesis-service
// wire protocol (service/protocol.cpp), the bench-baseline regression gate
// (util/benchcmp.cpp), and the synth_client response reader.
//
// Scope is deliberately the subset our writers emit: objects, arrays,
// double-quoted strings with backslash escapes (\u00XX only), integer and
// double numbers, true/false. Numbers keep their raw token so integer
// readers can reject "1e4" / "-3" loudly instead of silently truncating.
// The parser is recursive descent with a hard nesting-depth cap, so
// adversarial inputs ("[[[[[…", megabyte key floods) fail with
// std::invalid_argument instead of overflowing the stack.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace netsyn::util {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  std::string raw;  ///< number token, full precision
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  /// First member with `key`, or nullptr. Duplicate keys are legal JSON
  /// (RFC 8259 leaves the behavior open); this reader is first-wins, which
  /// the config fuzz tests pin.
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Maximum object/array nesting the parser accepts before rejecting the
/// document. Every legitimate document in this codebase is < 10 deep.
inline constexpr std::size_t kMaxJsonDepth = 64;

/// Parses one complete JSON document (trailing characters are an error).
/// Throws std::invalid_argument, with an offset, on any malformed input.
JsonValue parseJson(const std::string& text);

/// Escapes a string for embedding between double quotes in a JSON document
/// (quotes, backslashes, and C0 controls; RFC 8259 forbids raw controls).
std::string escapeJson(const std::string& s);

// ---- typed member readers ---------------------------------------------------
//
// Absent keys leave `out` untouched (callers keep their preset defaults);
// present keys of the wrong type/shape throw std::invalid_argument naming
// the key. Integer readers reject signs, exponents, and out-of-range values
// — stoull alone would silently truncate "1e4" to 1 or wrap "-4".

/// `v` as a non-negative integer; `key` names it in error messages.
std::uint64_t jsonUnsigned(const JsonValue& v, const char* key);

/// `v` as a finite double; `key` names it in error messages.
double jsonDouble(const JsonValue& v, const char* key);

void readSize(const JsonValue& obj, const char* key, std::size_t& out);
void readU64(const JsonValue& obj, const char* key, std::uint64_t& out);
void readDouble(const JsonValue& obj, const char* key, double& out);
void readBool(const JsonValue& obj, const char* key, bool& out);
void readString(const JsonValue& obj, const char* key, std::string& out);

}  // namespace netsyn::util
