#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace netsyn::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state, which is the
  // only state xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniformReal() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) {
  return lo + (hi - lo) * uniformReal();
}

double Rng::normal() {
  // Box-Muller; re-draws until the uniform is non-zero so log() is finite.
  double u1 = uniformReal();
  while (u1 <= 0.0) u1 = uniformReal();
  const double u2 = uniformReal();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::roulette(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights)
    if (w > 0.0) total += w;
  if (total <= 0.0) return static_cast<std::size_t>(uniform(weights.size()));
  double target = uniformReal() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;)
    if (weights[i] > 0.0) return i;
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace netsyn::util
