#include "util/benchcmp.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace netsyn::util {
namespace {

double numberAt(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (!v)
    throw std::invalid_argument("bench record missing \"" + key + "\"");
  return jsonDouble(*v, key.c_str());
}

void pushDelta(BenchComparison& cmp, const std::string& metric,
               const JsonValue& baseline, const JsonValue& fresh,
               const std::string& key, bool gated) {
  cmp.rows.push_back(BenchDelta{metric, numberAt(baseline, key),
                                numberAt(fresh, key),
                                /*higherIsBetter=*/true, gated});
}

/// Islands/fleet records carry a per-size "sweep" array; rows are matched
/// by the sizing key ("islands" / "hosts") so a re-ordered sweep still
/// compares correctly.
const JsonValue* sweepEntry(const JsonValue& record, const char* key,
                            double k) {
  const JsonValue* sweep = record.find("sweep");
  if (!sweep || sweep->kind != JsonValue::Kind::Array)
    throw std::invalid_argument("bench record missing sweep array");
  for (const JsonValue& entry : sweep->items)
    if (numberAt(entry, key) == k) return &entry;
  return nullptr;
}

}  // namespace

BenchComparison compareBenchRecords(const std::string& baselineJson,
                                    const std::string& freshJson) {
  const JsonValue baseline = parseJson(baselineJson);
  const JsonValue fresh = parseJson(freshJson);
  if (baseline.kind != JsonValue::Kind::Object ||
      fresh.kind != JsonValue::Kind::Object)
    throw std::invalid_argument("bench records must be JSON objects");

  std::string baseTag;
  std::string freshTag;
  readString(baseline, "bench", baseTag);
  readString(fresh, "bench", freshTag);
  if (baseTag.empty() || baseTag != freshTag)
    throw std::invalid_argument("bench tag mismatch: baseline '" + baseTag +
                                "' vs fresh '" + freshTag + "'");

  BenchComparison cmp;
  cmp.bench = baseTag;
  if (baseTag == "interpreter") {
    // The speedup ratio (engine vs the frozen legacy interpreter, timed in
    // the same process) is the machine-independent engine-throughput gate;
    // raw genes/sec rows track the absolute trajectory, info only.
    pushDelta(cmp, "speedup vs frozen legacy", baseline, fresh, "speedup",
              /*gated=*/true);
    pushDelta(cmp, "engine genes/sec", baseline, fresh,
              "engine_genes_per_sec", /*gated=*/false);
    pushDelta(cmp, "legacy genes/sec", baseline, fresh,
              "legacy_genes_per_sec", /*gated=*/false);
    // SIMD lane-executor rows (records predating the lane executor lack
    // them; comparing such a baseline just skips these rows).
    // `lanes_speedup` is the output-only lane path against the scalar
    // per-example check loop — SpecEvaluator::check's before/after — and is
    // gated with a hard >= 2x floor; `trace_lanes_speedup` is the full-trace
    // lane path (executeMultiView, SoA blocks consumed in place through a
    // LaneTraceView — the path the NN fitness encoders ride) against the
    // scalar engine's scatter-then-walk, gated at a >= 1.5x floor. Both
    // ratios gate only when the two records ran the same SIMD backend:
    // comparing an avx2 baseline on a scalar-fallback host says nothing
    // about the code, so they demote to info.
    if (baseline.find("lanes_speedup") && fresh.find("lanes_speedup")) {
      std::string baseBackend;
      std::string freshBackend;
      readString(baseline, "simd_backend", baseBackend);
      readString(fresh, "simd_backend", freshBackend);
      const bool sameBackend =
          !baseBackend.empty() && baseBackend == freshBackend;
      const std::string backendTag =
          sameBackend ? baseBackend
                      : baseBackend + " baseline, " + freshBackend + " fresh";
      cmp.rows.push_back(BenchDelta{
          "lane check vs scalar check (" + backendTag + ")",
          numberAt(baseline, "lanes_speedup"),
          numberAt(fresh, "lanes_speedup"),
          /*higherIsBetter=*/true, /*gated=*/sameBackend,
          /*floor=*/sameBackend ? 2.0 : 0.0});
      if (baseline.find("trace_lanes_speedup") &&
          fresh.find("trace_lanes_speedup")) {
        cmp.rows.push_back(BenchDelta{
            "lane trace view vs scalar engine (" + backendTag + ")",
            numberAt(baseline, "trace_lanes_speedup"),
            numberAt(fresh, "trace_lanes_speedup"),
            /*higherIsBetter=*/true, /*gated=*/sameBackend,
            /*floor=*/sameBackend ? 1.5 : 0.0});
      }
      // Info rows, each guarded on presence so a record written by an older
      // (or newer) bench binary still compares on what both sides have.
      for (const auto& [metric, key] :
           {std::pair<const char*, const char*>{"lanes genes/sec",
                                                "lanes_genes_per_sec"},
            {"lane check genes/sec", "check_lanes_genes_per_sec"}}) {
        if (baseline.find(key) && fresh.find(key))
          pushDelta(cmp, metric, baseline, fresh, key, /*gated=*/false);
      }
    }
  } else if (baseTag == "nn_scoring") {
    pushDelta(cmp, "batched/scalar speedup", baseline, fresh, "speedup",
              /*gated=*/true);
    pushDelta(cmp, "batched genes/sec", baseline, fresh,
              "batched_genes_per_sec", /*gated=*/false);
    pushDelta(cmp, "scalar genes/sec", baseline, fresh,
              "scalar_genes_per_sec", /*gated=*/false);
  } else if (baseTag == "islands") {
    const JsonValue* sweep = baseline.find("sweep");
    if (!sweep || sweep->kind != JsonValue::Kind::Array)
      throw std::invalid_argument("islands record missing sweep array");
    for (const JsonValue& entry : sweep->items) {
      const double k = numberAt(entry, "islands");
      const JsonValue* other = sweepEntry(fresh, "islands", k);
      if (!other)
        throw std::invalid_argument("fresh islands record lost the K=" +
                                    std::to_string(static_cast<long>(k)) +
                                    " sweep entry");
      const std::string tag = "K=" + std::to_string(static_cast<long>(k));
      // Solve counts are deterministic: gated. Wall-clock rate: info only.
      cmp.rows.push_back(BenchDelta{tag + " solved", numberAt(entry, "solved"),
                                    numberAt(*other, "solved"), true, true});
      cmp.rows.push_back(BenchDelta{tag + " solved/sec",
                                    numberAt(entry, "solved_per_sec"),
                                    numberAt(*other, "solved_per_sec"), true,
                                    false});
    }
  } else if (baseTag == "fleet") {
    // Fleet coordinator record: one sweep entry per host count, matched by
    // "hosts". The coordinator's determinism contract makes solve counts
    // host-count-independent — any solved delta between entries of the SAME
    // record, or vs the baseline, is an algorithmic change: gated. Wall-
    // clock rates and the scaling ratio swing with the host machine (and
    // with subprocess spawn cost at these tiny workloads): info only, and
    // presence-guarded so older records without the ratio still compare.
    const JsonValue* sweep = baseline.find("sweep");
    if (!sweep || sweep->kind != JsonValue::Kind::Array)
      throw std::invalid_argument("fleet record missing sweep array");
    for (const JsonValue& entry : sweep->items) {
      const double h = numberAt(entry, "hosts");
      const JsonValue* other = sweepEntry(fresh, "hosts", h);
      if (!other)
        throw std::invalid_argument("fresh fleet record lost the hosts=" +
                                    std::to_string(static_cast<long>(h)) +
                                    " sweep entry");
      const std::string tag = "hosts=" + std::to_string(static_cast<long>(h));
      cmp.rows.push_back(BenchDelta{tag + " solved", numberAt(entry, "solved"),
                                    numberAt(*other, "solved"), true, true});
      cmp.rows.push_back(BenchDelta{tag + " solved/sec",
                                    numberAt(entry, "solved_per_sec"),
                                    numberAt(*other, "solved_per_sec"), true,
                                    false});
      if (entry.find("scaling_vs_1host") && other->find("scaling_vs_1host"))
        cmp.rows.push_back(BenchDelta{tag + " scaling vs 1 host",
                                      numberAt(entry, "scaling_vs_1host"),
                                      numberAt(*other, "scaling_vs_1host"),
                                      true, false});
    }
  } else if (baseTag == "strdsl") {
    // String-domain synthesis record: one entry per search mode, matched by
    // name. Solve counts are deterministic per seed: gated. Rates: info.
    const JsonValue* modes = baseline.find("modes");
    if (!modes || modes->kind != JsonValue::Kind::Array)
      throw std::invalid_argument("strdsl record missing modes array");
    const JsonValue* freshModes = fresh.find("modes");
    if (!freshModes || freshModes->kind != JsonValue::Kind::Array)
      throw std::invalid_argument("fresh strdsl record missing modes array");
    for (const JsonValue& entry : modes->items) {
      std::string mode;
      readString(entry, "mode", mode);
      const JsonValue* other = nullptr;
      for (const JsonValue& cand : freshModes->items) {
        std::string name;
        readString(cand, "mode", name);
        if (name == mode) other = &cand;
      }
      if (!other)
        throw std::invalid_argument("fresh strdsl record lost mode '" + mode +
                                    "'");
      cmp.rows.push_back(BenchDelta{mode + " solved",
                                    numberAt(entry, "solved"),
                                    numberAt(*other, "solved"), true, true});
      cmp.rows.push_back(BenchDelta{mode + " solved/sec",
                                    numberAt(entry, "solved_per_sec"),
                                    numberAt(*other, "solved_per_sec"), true,
                                    false});
    }
  } else {
    throw std::invalid_argument("unknown bench tag '" + baseTag + "'");
  }
  return cmp;
}

std::string renderMarkdown(const BenchComparison& cmp, double tolerance) {
  std::ostringstream os;
  os << "### bench gate: " << cmp.bench << " (tolerance "
     << static_cast<int>(std::lround(tolerance * 100.0)) << "%)\n\n";
  os << "| metric | baseline | fresh | change | status |\n";
  os << "|---|---:|---:|---:|---|\n";
  for (const BenchDelta& d : cmp.rows) {
    char change[32];
    std::snprintf(change, sizeof change, "%+.1f%%", d.change() * 100.0);
    os << "| " << d.metric << " | " << d.baseline << " | " << d.fresh
       << " | " << change << " | "
       << (!d.gated ? "info" : d.regressed(tolerance) ? "**REGRESSED**" : "ok")
       << " |\n";
  }
  return os.str();
}

}  // namespace netsyn::util
