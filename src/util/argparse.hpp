// Minimal command-line argument parsing for bench and example binaries.
//
// Supports `--key=value`, `--key value`, and boolean `--flag` forms. Every
// binary in this repository is runnable with no arguments (CI-scale
// defaults); flags only override defaults, so parsing failures are loud but
// simple.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace netsyn::util {

/// Parsed command line. Unknown keys are retained (and can be listed) so a
/// harness can detect typos; values are parsed lazily with typed getters.
class ArgParse {
 public:
  ArgParse() = default;
  ArgParse(int argc, const char* const* argv) { parse(argc, argv); }

  /// Parses `argv`. Throws std::invalid_argument on malformed input such as
  /// a non-flag positional token.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  /// Typed getters; return `fallback` when the key is absent and throw
  /// std::invalid_argument when the value does not parse.
  std::string getString(const std::string& key,
                        const std::string& fallback) const;
  long getInt(const std::string& key, long fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  bool getBool(const std::string& key, bool fallback) const;

  /// All keys seen, in insertion order (for diagnostics / --help output).
  const std::vector<std::string>& keys() const { return order_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

}  // namespace netsyn::util
