#include "util/faultinject.hpp"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

namespace netsyn::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hashName(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t parseU64(const std::string& text, const std::string& clause) {
  // std::stoull happily parses "-1" (wrapping to 2^64-1) and leading
  // whitespace/plus signs; a fault schedule that silently turns a typo'd
  // count into "fire forever" is exactly the kind of bug the injector is
  // meant to find, not introduce. Require a pure digit string.
  if (text.empty() ||
      text.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("fault spec: bad number '" + text + "' in '" +
                                clause + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE)
    throw std::invalid_argument("fault spec: number out of range '" + text +
                                "' in '" + clause + "'");
  return static_cast<std::uint64_t>(v);
}

double parseProb(const std::string& text, const std::string& clause) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(text, &pos);
  } catch (...) {
    pos = 0;
  }
  // NaN compares false to everything, so it sails through a plain
  // range check and later poisons the fire decision; reject non-finite
  // values explicitly.
  if (pos != text.size() || text.empty() || !std::isfinite(v) || v < 0.0 ||
      v > 1.0)
    throw std::invalid_argument("fault spec: bad probability '" + text +
                                "' in '" + clause + "'");
  return v;
}

/// One clause: site=action[:param][@first][/every][xcount][~prob].
std::pair<std::string, FaultSpec> parseClause(const std::string& clause) {
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0)
    throw std::invalid_argument("fault spec: missing 'site=' in '" + clause +
                                "'");
  const std::string site = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);

  // Peel the suffixes right to left so action params may not contain the
  // suffix characters (they are numeric anyway).
  FaultSpec spec;
  bool haveCount = false;
  for (const char marker : {'~', 'x', '/', '@'}) {
    const std::size_t at = rest.rfind(marker);
    if (at == std::string::npos) continue;
    const std::string value = rest.substr(at + 1);
    rest = rest.substr(0, at);
    switch (marker) {
      case '~': spec.probability = parseProb(value, clause); break;
      case 'x': spec.count = parseU64(value, clause); haveCount = true; break;
      case '/': spec.every = parseU64(value, clause); break;
      case '@': spec.first = parseU64(value, clause); break;
    }
  }
  if (spec.first == 0)
    throw std::invalid_argument("fault spec: @first is 1-based in '" + clause +
                                "'");
  // A periodic fault without an explicit cap means "keep firing".
  if (!haveCount && spec.every > 0) spec.count = 0;

  std::string param;
  if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
    param = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  if (rest == "crash") {
    spec.action = FaultAction::Crash;
    if (!param.empty())
      spec.exitCode = static_cast<int>(parseU64(param, clause));
  } else if (rest == "throw") {
    spec.action = FaultAction::Throw;
  } else if (rest == "delay") {
    spec.action = FaultAction::Delay;
    if (param.empty())
      throw std::invalid_argument("fault spec: delay needs ':ms' in '" +
                                  clause + "'");
    spec.delayMs = parseU64(param, clause);
  } else if (rest == "corrupt") {
    spec.action = FaultAction::Corrupt;
  } else {
    throw std::invalid_argument("fault spec: unknown action '" + rest +
                                "' in '" + clause +
                                "' (crash, throw, delay, corrupt)");
  }
  return {site, spec};
}

}  // namespace

const char* faultActionName(FaultAction a) {
  switch (a) {
    case FaultAction::Crash: return "crash";
    case FaultAction::Throw: return "throw";
    case FaultAction::Delay: return "delay";
    case FaultAction::Corrupt: return "corrupt";
  }
  return "?";
}

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site s;
  s.spec = spec;
  s.rngState = seed_ ^ hashName(site);
  sites_[site] = s;
  armedFlag_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::armFromText(const std::string& text) {
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find_first_of(";,", start);
    if (end == std::string::npos) end = text.size();
    std::string clause = text.substr(start, end - start);
    // Trim surrounding whitespace; empty clauses (trailing separators) are
    // legal and ignored.
    const std::size_t b = clause.find_first_not_of(" \t");
    const std::size_t e = clause.find_last_not_of(" \t");
    if (b != std::string::npos) {
      auto [site, spec] = parseClause(clause.substr(b, e - b + 1));
      arm(site, spec);
    }
    start = end + 1;
  }
}

bool FaultRegistry::armFromEnv() {
  if (const char* seed = std::getenv("NETSYN_FAULT_SEED"))
    setSeed(parseU64(seed, "NETSYN_FAULT_SEED"));
  const char* spec = std::getenv("NETSYN_FAULTS");
  if (!spec || !*spec) return false;
  armFromText(spec);
  return true;
}

void FaultRegistry::setSeed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [name, site] : sites_) {
    site.rngState = seed_ ^ hashName(name);
    site.stats = FaultSiteStats{};
  }
}

void FaultRegistry::disarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armedFlag_.store(false, std::memory_order_relaxed);
}

FaultSiteStats FaultRegistry::stats(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = sites_.find(site); it != sites_.end())
    return it->second.stats;
  return FaultSiteStats{};
}

std::vector<std::pair<std::string, FaultSiteStats>> FaultRegistry::allStats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, FaultSiteStats>> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) out.emplace_back(name, site.stats);
  return out;
}

std::uint64_t FaultRegistry::totalHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [name, site] : sites_) n += site.stats.hits;
  return n;
}

std::uint64_t FaultRegistry::totalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [name, site] : sites_) n += site.stats.fires;
  return n;
}

std::uint64_t FaultRegistry::nextRandLocked(Site& site) {
  return splitmix64(site.rngState);
}

bool FaultRegistry::shouldFireLocked(Site& site) {
  const FaultSpec& spec = site.spec;
  const std::uint64_t hit = ++site.stats.hits;
  if (spec.count > 0 && site.stats.fires >= spec.count) return false;
  const bool eligible =
      hit == spec.first ||
      (spec.every > 0 && hit > spec.first &&
       (hit - spec.first) % spec.every == 0);
  if (!eligible) return false;
  if (spec.probability < 1.0) {
    const double draw =
        static_cast<double>(nextRandLocked(site) >> 11) * 0x1.0p-53;
    if (draw >= spec.probability) return false;
  }
  ++site.stats.fires;
  return true;
}

void FaultRegistry::onHit(const char* site) {
  FaultSpec spec;
  std::uint64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return;
    if (it->second.spec.action == FaultAction::Corrupt) {
      // Corrupt only acts through FAULT_CORRUPT; a plain FAULT_POINT at the
      // same name is not a hit for it.
      return;
    }
    if (!shouldFireLocked(it->second)) return;
    spec = it->second.spec;
    hit = it->second.stats.hits;
  }
  // Act outside the lock: a delay must not serialize other sites, and a
  // throw must not leave the mutex held.
  switch (spec.action) {
    case FaultAction::Crash:
      // Hard death: no destructors, no stream flushes — the closest an
      // in-process fault can get to kill -9.
      std::_Exit(spec.exitCode);
    case FaultAction::Throw:
      throw FaultInjected(std::string("injected fault at ") + site +
                          " (hit " + std::to_string(hit) + ")");
    case FaultAction::Delay:
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.delayMs));
      return;
    case FaultAction::Corrupt:
      return;  // unreachable (filtered above)
  }
}

void FaultRegistry::corrupt(const char* site, std::string& bytes) {
  std::size_t pos = 0;
  unsigned char mask = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) return;
    if (it->second.spec.action != FaultAction::Corrupt) return;
    if (!shouldFireLocked(it->second)) return;
    if (bytes.empty()) return;  // fired, but nothing to flip
    const std::uint64_t r = nextRandLocked(it->second);
    pos = static_cast<std::size_t>(r % bytes.size());
    // Any nonzero mask guarantees the byte actually changes.
    mask = static_cast<unsigned char>((r >> 32) | 1u);
  }
  bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^ mask);
}

}  // namespace netsyn::util
