// Deterministic, seeded fault injection for robustness testing.
//
// A FAULT_POINT("dotted.site.name") marks a place where a fault can be made
// to happen on demand: the synthesis service's task loop, the protocol
// parse path, checkpoint I/O. Disarmed (the default, and the only state
// production code ever runs in), a fault point is one relaxed atomic load
// and an untaken branch — no lock, no allocation, no site lookup. Armed via
// FaultRegistry (programmatically, from a spec string, or from the
// NETSYN_FAULTS environment variable), a site can
//
//   crash    — terminate the process immediately (std::_Exit; simulates a
//              kill -9 / power loss: no destructors, no flushes),
//   throw    — raise FaultInjected (simulates a worker dying mid-task),
//   delay    — sleep for a configured number of milliseconds (simulates a
//              stuck dependency; what the stall watchdog exists to catch),
//   corrupt  — flip one byte of a buffer passed through FAULT_CORRUPT
//              (simulates silent media corruption; the checksum layer must
//              detect it — "corrupt and detect").
//
// Firing is deterministic: each site counts its hits and fires at hit
// `first`, then every `every` hits after that, at most `count` times.
// Probabilistic firing (`~p`) draws from a per-site xoshiro stream derived
// from (registry seed, site name), so a seeded chaos run fires the exact
// same faults every time. The chaos suite (tests/test_chaos.cpp) leans on
// this: results with faults armed must be bit-identical to a fault-free
// run, which is only checkable if the fault schedule itself is replayable.
//
// Spec grammar (';'- or ','-separated clauses):
//
//   site=action[:param][@first][/every][xcount][~prob]
//
//   service.task.start=throw@3          throw on the 3rd hit, once
//   service.task.generation=delay:200@5/7x2   sleep 200ms at hits 5 and 12
//   protocol.request=crash:137@2        _Exit(137) on the 2nd request
//   checkpoint.corrupt=corrupt@1x0~0.5  flip a byte in ~half the writes
//
// Defaults: first=1, every=0 (fire only at `first`), count=1 (0 =
// unlimited; every>0 defaults count to unlimited), prob=1.
//
// Thread-safe: arming and hits take one registry mutex (the slow path only
// exists while armed; chaos tests are not throughput-sensitive).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace netsyn::util {

/// The exception a `throw`-armed fault point raises.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

enum class FaultAction : std::uint8_t { Crash, Throw, Delay, Corrupt };

const char* faultActionName(FaultAction a);

struct FaultSpec {
  FaultAction action = FaultAction::Throw;
  std::uint64_t first = 1;  ///< 1-based hit index of the first fire
  std::uint64_t every = 0;  ///< 0: fire only at `first`; K: every Kth after
  std::uint64_t count = 1;  ///< max fires; 0 = unlimited
  double probability = 1.0; ///< <1: seeded per-eligible-hit coin
  std::uint64_t delayMs = 0;///< Delay payload
  int exitCode = 137;       ///< Crash payload
};

struct FaultSiteStats {
  std::uint64_t hits = 0;   ///< times the armed site was reached
  std::uint64_t fires = 0;  ///< times the action actually ran
};

class FaultRegistry {
 public:
  /// The process-wide registry (sites are global names, like loggers).
  static FaultRegistry& instance();

  /// Fast disarmed check — the only cost a FAULT_POINT pays in production.
  static bool armed() {
    return armedFlag_.load(std::memory_order_relaxed);
  }

  /// Arms one site. Replaces any previous arming of the same site and
  /// resets its counters.
  void arm(const std::string& site, FaultSpec spec);

  /// Arms every clause of a spec string (grammar above). Throws
  /// std::invalid_argument naming the offending clause on bad syntax.
  void armFromText(const std::string& text);

  /// Arms from $NETSYN_FAULTS when set (and seeds from $NETSYN_FAULT_SEED
  /// when that is set). Returns true when anything was armed.
  bool armFromEnv();

  /// Seed for the per-site probability/corruption streams. Call before
  /// arming; re-seeding resets every site's stream and counters.
  void setSeed(std::uint64_t seed);

  /// Disarms every site and drops the fast-path flag back to no-op.
  void disarmAll();

  /// Counters for one site (zeros when never armed).
  FaultSiteStats stats(const std::string& site) const;
  /// Every armed site with its counters, name-ordered.
  std::vector<std::pair<std::string, FaultSiteStats>> allStats() const;
  std::uint64_t totalHits() const;
  std::uint64_t totalFires() const;

  // ---- slow paths behind the macros (public for the macros only) ----

  /// Counts a hit at `site` and performs its armed action (crash / throw /
  /// delay). Corrupt-armed sites count but do nothing here.
  void onHit(const char* site);

  /// Counts a hit at `site`; when a corrupt action fires, flips one
  /// deterministically chosen byte of `bytes` (no-op on an empty buffer).
  void corrupt(const char* site, std::string& bytes);

 private:
  FaultRegistry() = default;

  struct Site {
    FaultSpec spec;
    FaultSiteStats stats;
    std::uint64_t rngState = 0;  ///< splitmix64 stream, seeded per site
  };

  /// Advances the firing state; true when the action should run now.
  bool shouldFireLocked(Site& site);
  std::uint64_t nextRandLocked(Site& site);

  static inline std::atomic<bool> armedFlag_{false};

  mutable std::mutex mu_;
  std::uint64_t seed_ = 0x6e657473796e2101ULL;
  std::map<std::string, Site> sites_;
};

}  // namespace netsyn::util

/// Marks a fault site. Disarmed: one relaxed load and an untaken branch.
#define FAULT_POINT(site_name)                                      \
  do {                                                              \
    if (::netsyn::util::FaultRegistry::armed()) [[unlikely]]        \
      ::netsyn::util::FaultRegistry::instance().onHit(site_name);   \
  } while (0)

/// Marks a corruptible buffer (std::string) at a fault site.
#define FAULT_CORRUPT(site_name, bytes)                                    \
  do {                                                                     \
    if (::netsyn::util::FaultRegistry::armed()) [[unlikely]]               \
      ::netsyn::util::FaultRegistry::instance().corrupt(site_name, bytes); \
  } while (0)
