// Line-oriented transport seam for the NDJSON protocol: one interface the
// fleet coordinator and synth_client speak through. Implementations:
// PipeTransport (fork/exec subprocess over a pipe pair), SocketTransport
// (TCP or Unix-domain stream to a remote daemon, dialed or adopted from a
// SocketListener accept), and the in-process LoopbackTransport in
// service/fleet.hpp — a remote host is just another Transport.
//
// Failure model: every way the peer can be gone — EPIPE on write, EOF or
// connection reset on read, a receive that outlives its timeout, a line
// that exceeds the framing cap — surfaces as TransportClosed (timeouts as
// the TransportTimeout subclass). A transport that threw TransportClosed
// is dead for good: a line protocol cannot resynchronize mid-frame, so the
// caller must re-dial/respawn and re-hello rather than retry the request.
// kill() simulates abrupt host death (SIGKILL for subprocesses, an
// RST-close for sockets — no shutdown handshake, durable state is whatever
// already hit disk), which is what the chaos/failover tests lean on.
//
// Timeout budget semantics: recvLine's deadline is fixed when the call
// starts (CLOCK_MONOTONIC) and EINTR resumes the *remaining* budget — a
// signal-heavy chaos run can delay a timeout by at most one delivery, not
// extend it unboundedly (pinned by the transport conformance suite).
//
// Chaos surface: the socket path carries deterministic fault-injection
// sites ("transport.dial", "transport.accept", "transport.recv",
// util/faultinject.hpp). A throw-armed fault at any of them severs that
// connection exactly as a network partition would: the transport closes
// and the caller sees TransportClosed.
//
// RetrySchedule is the deterministic backoff companion: reconnect/shed
// delays are seeded draws (splitmix64, the fault-injection registry's
// generator) rather than wall-clock entropy, so a chaos CI run replays the
// exact same schedule every time.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace netsyn::util {

/// The peer end of a transport is gone (write error, EOF, or timeout).
class TransportClosed : public std::runtime_error {
 public:
  explicit TransportClosed(const std::string& what)
      : std::runtime_error(what) {}
};

/// recvLine() outlived its timeout budget. The transport is closed: a peer
/// that stopped answering mid-request cannot be resynchronized on a line
/// protocol, so the caller must treat the host as dead.
class TransportTimeout : public TransportClosed {
 public:
  explicit TransportTimeout(const std::string& what) : TransportClosed(what) {}
};

/// Ceiling on one received line (framing cap): a peer that streams more
/// bytes without a newline is severed (TransportClosed) instead of growing
/// the receive buffer without bound.
inline constexpr std::size_t kMaxLineBytes = 8u << 20;

/// One bidirectional line session with a protocol peer.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one request line (no trailing newline). Throws TransportClosed
  /// when the peer is gone.
  virtual void sendLine(const std::string& line) = 0;

  /// Receives one response line (newline stripped). Throws TransportClosed
  /// on EOF, TransportTimeout past the receive budget.
  virtual std::string recvLine() = 0;

  /// False once the transport has failed or been closed/killed.
  virtual bool alive() const = 0;

  /// Graceful close: release the session (subprocess peers get EOF on
  /// stdin and exit on their own). Idempotent.
  virtual void close() = 0;

  /// Abrupt peer death for chaos tests (SIGKILL a subprocess; in-process
  /// peers just drop the connection). Defaults to close().
  virtual void kill() { close(); }

  /// One request/response round trip.
  std::string request(const std::string& line) {
    sendLine(line);
    return recvLine();
  }
};

/// A spawned subprocess (synthd-style: NDJSON on stdin/stdout) behind the
/// Transport interface. The receive timeout (0 = wait forever) is the
/// coordinator's host-death detector: a backend that stops answering is
/// indistinguishable from a dead one, and gets treated as such.
class PipeTransport : public Transport {
 public:
  PipeTransport(const std::string& path, const std::vector<std::string>& args,
                double recvTimeoutSeconds = 0.0);
  ~PipeTransport() override;
  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  void sendLine(const std::string& line) override;
  std::string recvLine() override;
  bool alive() const override { return pid_ > 0 && !closed_; }
  void close() override;
  void kill() override;

  pid_t pid() const { return pid_; }

 private:
  void markClosed();

  pid_t pid_ = -1;
  int writeFd_ = -1;
  int readFd_ = -1;
  bool closed_ = false;
  double recvTimeoutSeconds_ = 0.0;
  std::string buf_;  ///< bytes read past the last returned line
};

/// One parsed transport address: "HOST:PORT" (TCP; HOST may be a hostname
/// or a numeric address, PORT 0 asks the kernel for an ephemeral port) or
/// "unix:PATH" (Unix-domain stream socket at PATH).
struct SocketEndpoint {
  bool isUnix = false;
  std::string host;        ///< TCP host, or the Unix socket path
  std::uint16_t port = 0;  ///< TCP only

  /// Parses the textual forms above. Throws std::invalid_argument on an
  /// empty host/path, a malformed port, or a Unix path too long for
  /// sockaddr_un.
  static SocketEndpoint parse(const std::string& text);

  /// Canonical text form ("HOST:PORT" / "unix:PATH") — parse(str()) round
  /// trips.
  std::string str() const;
};

/// A connected stream socket (TCP or Unix-domain) behind the Transport
/// interface. Dialing ("transport.dial" fault site) throws TransportClosed
/// when the peer is unreachable, so a reconnect loop can retry on seeded
/// backoff. kill() is an abrupt RST-close (SO_LINGER 0): the peer sees a
/// reset, not a clean shutdown — a simulated network partition.
class SocketTransport : public Transport {
 public:
  /// Dials `endpoint`. recvTimeoutSeconds 0 = wait forever; maxLineBytes
  /// caps one received line (kMaxLineBytes default).
  explicit SocketTransport(const SocketEndpoint& endpoint,
                           double recvTimeoutSeconds = 0.0,
                           std::size_t maxLineBytes = kMaxLineBytes);

  /// Adopts an already-connected socket (a SocketListener accept).
  SocketTransport(int fd, std::string peerName, double recvTimeoutSeconds = 0.0,
                  std::size_t maxLineBytes = kMaxLineBytes);

  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  void sendLine(const std::string& line) override;
  std::string recvLine() override;
  bool alive() const override {
    return fd_.load(std::memory_order_acquire) >= 0;
  }
  void close() override;
  void kill() override;

  /// Cross-thread sever: half-closes both directions (shutdown(2)) so a
  /// recvLine blocked on *another* thread wakes with EOF and closes the
  /// transport itself. Unlike close()/kill() this never releases the fd,
  /// so it is safe to call while the owning thread is mid-recv — the one
  /// transport operation with that guarantee (service::SocketServer's
  /// stop/dropConnections hook).
  void sever();

  /// Raw unframed bytes on the wire — the framing-fuzz hook: tests split
  /// one protocol line across arbitrary write (and thus TCP segment)
  /// boundaries to prove the peer reassembles or cleanly rejects it.
  void sendBytes(const char* data, std::size_t n);

  const std::string& peerName() const { return peer_; }

 private:
  void markClosed();

  std::atomic<int> fd_{-1};  ///< -1 once closed (exchange-and-close)
  double recvTimeoutSeconds_ = 0.0;
  std::size_t maxLineBytes_ = kMaxLineBytes;
  std::string peer_;
  std::string buf_;  ///< bytes read past the last returned line
};

/// A bound, listening stream socket (TCP or Unix-domain). accept() hands
/// out connected SocketTransports ("transport.accept" fault site). For
/// TCP port 0 the kernel-assigned port is visible via boundEndpoint() —
/// how tests and CI avoid port collisions. Unix sockets unlink their path
/// on close.
class SocketListener {
 public:
  explicit SocketListener(const SocketEndpoint& endpoint, int backlog = 16);
  ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// The actual bound address (TCP port 0 resolved).
  const SocketEndpoint& boundEndpoint() const { return bound_; }

  /// Waits up to timeoutSeconds (0 = forever) for a connection; returns
  /// nullptr on timeout. `recvTimeoutSeconds` seeds the accepted
  /// transport's receive budget. Throws TransportClosed once the listener
  /// is closed.
  std::unique_ptr<SocketTransport> accept(double timeoutSeconds = 0.0,
                                          double recvTimeoutSeconds = 0.0);

  bool listening() const { return fd_ >= 0; }

  /// Stops accepting (idempotent). Not safe to race with a blocked
  /// accept() on another thread — accept loops must use a finite timeout
  /// and check a stop flag between ticks (service::SocketServer does).
  void close();

 private:
  int fd_ = -1;
  SocketEndpoint bound_;
  bool unlinkOnClose_ = false;
};

/// Deterministic capped-exponential backoff with seeded jitter: attempt n
/// waits min(baseMs * 2^(n-1), capMs) scaled by a jitter factor in
/// [0.5, 1.0) drawn from a splitmix64 stream. Same seed, same schedule —
/// chaos CI replays reconnect timing exactly.
class RetrySchedule {
 public:
  RetrySchedule(double baseMs, double capMs, std::uint64_t seed);

  /// Delay before the next attempt, in milliseconds (advances the stream).
  double nextDelayMs();

  /// Attempts drawn so far.
  std::size_t attempts() const { return attempt_; }

  void reset(std::uint64_t seed);

 private:
  double baseMs_;
  double capMs_;
  std::uint64_t state_;
  std::size_t attempt_ = 0;
};

}  // namespace netsyn::util
