// Line-oriented transport seam for the NDJSON protocol: one interface the
// fleet coordinator and synth_client speak through, with a subprocess pipe
// implementation today and room for sockets later (a remote host is just
// another Transport).
//
// Failure model: every way the peer can be gone — EPIPE on write, EOF on
// read, a receive that outlives its timeout — surfaces as TransportClosed
// (timeouts as the TransportTimeout subclass). A transport that threw
// TransportClosed is dead for good: the coordinator treats the host as
// lost and reassigns its work; a client respawns and reattaches. kill()
// simulates abrupt host death (SIGKILL for subprocesses — no shutdown
// handshake, durable state is whatever already hit disk), which is what
// the chaos/failover tests lean on.
//
// RetrySchedule is the deterministic backoff companion: reconnect/shed
// delays are seeded draws (splitmix64, the fault-injection registry's
// generator) rather than wall-clock entropy, so a chaos CI run replays the
// exact same schedule every time.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace netsyn::util {

/// The peer end of a transport is gone (write error, EOF, or timeout).
class TransportClosed : public std::runtime_error {
 public:
  explicit TransportClosed(const std::string& what)
      : std::runtime_error(what) {}
};

/// recvLine() outlived its timeout budget. The transport is closed: a peer
/// that stopped answering mid-request cannot be resynchronized on a line
/// protocol, so the caller must treat the host as dead.
class TransportTimeout : public TransportClosed {
 public:
  explicit TransportTimeout(const std::string& what) : TransportClosed(what) {}
};

/// One bidirectional line session with a protocol peer.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one request line (no trailing newline). Throws TransportClosed
  /// when the peer is gone.
  virtual void sendLine(const std::string& line) = 0;

  /// Receives one response line (newline stripped). Throws TransportClosed
  /// on EOF, TransportTimeout past the receive budget.
  virtual std::string recvLine() = 0;

  /// False once the transport has failed or been closed/killed.
  virtual bool alive() const = 0;

  /// Graceful close: release the session (subprocess peers get EOF on
  /// stdin and exit on their own). Idempotent.
  virtual void close() = 0;

  /// Abrupt peer death for chaos tests (SIGKILL a subprocess; in-process
  /// peers just drop the connection). Defaults to close().
  virtual void kill() { close(); }

  /// One request/response round trip.
  std::string request(const std::string& line) {
    sendLine(line);
    return recvLine();
  }
};

/// A spawned subprocess (synthd-style: NDJSON on stdin/stdout) behind the
/// Transport interface. The receive timeout (0 = wait forever) is the
/// coordinator's host-death detector: a backend that stops answering is
/// indistinguishable from a dead one, and gets treated as such.
class PipeTransport : public Transport {
 public:
  PipeTransport(const std::string& path, const std::vector<std::string>& args,
                double recvTimeoutSeconds = 0.0);
  ~PipeTransport() override;
  PipeTransport(const PipeTransport&) = delete;
  PipeTransport& operator=(const PipeTransport&) = delete;

  void sendLine(const std::string& line) override;
  std::string recvLine() override;
  bool alive() const override { return pid_ > 0 && !closed_; }
  void close() override;
  void kill() override;

  pid_t pid() const { return pid_; }

 private:
  void markClosed();

  pid_t pid_ = -1;
  int writeFd_ = -1;
  int readFd_ = -1;
  bool closed_ = false;
  double recvTimeoutSeconds_ = 0.0;
  std::string buf_;  ///< bytes read past the last returned line
};

/// Deterministic capped-exponential backoff with seeded jitter: attempt n
/// waits min(baseMs * 2^(n-1), capMs) scaled by a jitter factor in
/// [0.5, 1.0) drawn from a splitmix64 stream. Same seed, same schedule —
/// chaos CI replays reconnect timing exactly.
class RetrySchedule {
 public:
  RetrySchedule(double baseMs, double capMs, std::uint64_t seed);

  /// Delay before the next attempt, in milliseconds (advances the stream).
  double nextDelayMs();

  /// Attempts drawn so far.
  std::size_t attempts() const { return attempt_; }

  void reset(std::uint64_t seed);

 private:
  double baseMs_;
  double capMs_;
  std::uint64_t state_;
  std::size_t attempt_ = 0;
};

}  // namespace netsyn::util
