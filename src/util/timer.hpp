// Monotonic wall-clock timer for synthesis-time measurements (Table 3 /
// Figure 4(g)-(i)).
#pragma once

#include <chrono>

namespace netsyn::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace netsyn::util
