// Aligned text / CSV table rendering for the experiment harness.
//
// Every bench binary regenerates one of the paper's tables or figure series;
// this writer produces both a human-readable aligned table (stdout) and CSV
// (optional file) from the same data.
#pragma once

#include <string>
#include <vector>

namespace netsyn::util {

/// A simple row-oriented table. Cells are strings; numeric helpers format
/// with fixed precision. Rendering aligns columns on the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent `add*` calls append cells to it.
  Table& newRow();

  Table& add(std::string cell);
  Table& add(const char* cell) { return add(std::string(cell)); }
  Table& addInt(long v);
  /// Fixed-precision double; NaN renders as "-" (the paper's marker for
  /// "did not synthesize at this percentile").
  Table& addDouble(double v, int precision = 2);
  /// Percentage with a trailing '%'.
  Table& addPercent(double fraction, int precision = 1);

  std::size_t numRows() const { return rows_.size(); }
  std::size_t numCols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Aligned plain-text rendering.
  std::string toString() const;
  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string toCsv() const;

  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void writeCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netsyn::util
