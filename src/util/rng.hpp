// Deterministic pseudo-random number generation for NetSyn.
//
// Every stochastic component of the system (program generators, the genetic
// algorithm, neural-network initialization, baseline samplers) draws from an
// explicitly threaded `Rng` so that experiments are exactly reproducible from
// a single seed. The generator is xoshiro256** seeded via SplitMix64, which is
// fast, high quality, and has a tiny state that is cheap to fork per worker.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace netsyn::util {

/// xoshiro256** PRNG with SplitMix64 seeding.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, although the member helpers below are the
/// intended interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Two `Rng`s built from the
  /// same seed produce identical streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from `seed` (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Raw 64 random bits.
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniformReal();

  /// Uniform real in [lo, hi).
  double uniformReal(double lo, double hi);

  /// Bernoulli draw with probability `p` of returning true.
  bool bernoulli(double p) { return uniformReal() < p; }

  /// Standard normal variate (Box-Muller, no caching to stay stateless).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero. If all weights are zero the
  /// index is drawn uniformly. This is the Roulette Wheel operator used by
  /// the paper's genetic algorithm (Goldberg, 1989).
  std::size_t roulette(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of a container.
  template <typename Container>
  void shuffle(Container& c) {
    if (c.size() < 2) return;
    for (std::size_t i = c.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty container.
  template <typename Container>
  auto& pick(Container& c) {
    return c[static_cast<std::size_t>(uniform(c.size()))];
  }
  template <typename Container>
  const auto& pick(const Container& c) {
    return c[static_cast<std::size_t>(uniform(c.size()))];
  }

  /// Derives an independent child generator; used to give each test program
  /// or worker its own stream while keeping the parent stream untouched by
  /// the amount of work a child performs.
  Rng fork();

  /// The raw xoshiro256** state, for durable checkpoints. A generator
  /// rebuilt via setState() continues the exact stream.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }

  /// Restores a state captured by state(). The caller is responsible for
  /// never passing the all-zero state (xoshiro's one forbidden point);
  /// reseed() can never produce it.
  void setState(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0]; s_[1] = s[1]; s_[2] = s[2]; s_[3] = s[3];
  }

 private:
  std::uint64_t next();

  std::uint64_t s_[4]{};
};

}  // namespace netsyn::util
