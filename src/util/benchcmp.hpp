// Bench-baseline comparison: the logic behind the CI perf-regression gate.
//
// The bench binaries emit machine-readable records (BENCH_interpreter.json,
// BENCH_nn.json, BENCH_islands.json); snapshots of known-good runs live in
// bench/baselines/. compareBenchRecords() lines a fresh record up against
// its snapshot, metric by metric, and the gate (bench/bench_gate.cpp) fails
// the job when a gated metric regresses beyond the tolerance.
//
// Gating policy — gated metrics must survive a change of machine, because
// the committed snapshot and the CI runner are rarely the same hardware:
//   - "speedup" ratios are gated. Each bench times its subject against an
//     in-process reference on the same machine in the same run (the
//     interpreter bench against the frozen PR 1 interpreter, the NN bench
//     scalar vs batched), so the ratio cancels the machine out: a >15%
//     speedup drop means the subject path itself got slower relative to
//     its fixed reference — a genes/sec regression in machine-independent
//     units.
//   - solve counts are gated: deterministic for a fixed config, so any
//     drop is an algorithmic change, not noise.
//   - absolute genes/sec and wall-clock rates are informational only: they
//     track the raw trajectory but swing with the host, so failing on
//     them would fail every hardware change.
#pragma once

#include <string>
#include <vector>

namespace netsyn::util {

struct BenchDelta {
  std::string metric;
  double baseline = 0.0;
  double fresh = 0.0;
  bool higherIsBetter = true;
  bool gated = true;  ///< informational rows never fail the gate

  /// Absolute floor for gated higher-is-better rows (0 = none): the row
  /// fails whenever fresh < floor, regardless of how the baseline moved.
  /// Used for ratios that carry a hard acceptance bar (the SIMD lane
  /// executor must stay >= 2x the scalar engine), where drifting the
  /// committed baseline downward must not quietly lower the bar.
  double floor = 0.0;

  /// fresh/baseline - 1, signed so that positive is "more" (not "better").
  double change() const {
    return baseline == 0.0 ? 0.0 : fresh / baseline - 1.0;
  }

  /// True when this row fails at `tolerance` (e.g. 0.15 = 15%). A zero
  /// baseline can't regress (a solved-count of 0 has nothing to lose) —
  /// but a floor still applies.
  bool regressed(double tolerance) const {
    if (!gated) return false;
    if (floor > 0.0 && fresh < floor) return true;
    if (baseline == 0.0) return false;
    return higherIsBetter ? fresh < baseline * (1.0 - tolerance)
                          : fresh > baseline * (1.0 + tolerance);
  }
};

struct BenchComparison {
  std::string bench;  ///< the records' "bench" tag
  std::vector<BenchDelta> rows;

  bool anyRegression(double tolerance) const {
    for (const BenchDelta& d : rows)
      if (d.regressed(tolerance)) return true;
    return false;
  }
};

/// Compares two bench records of the same kind ("interpreter",
/// "nn_scoring", "islands", "strdsl", or "fleet"). Throws
/// std::invalid_argument on malformed JSON, unknown bench tags, or a tag
/// mismatch between the two records.
BenchComparison compareBenchRecords(const std::string& baselineJson,
                                    const std::string& freshJson);

/// GitHub-flavored markdown table of the comparison (one row per metric,
/// status column ok / REGRESSED / info) — what the CI job appends to its
/// step summary.
std::string renderMarkdown(const BenchComparison& cmp, double tolerance);

}  // namespace netsyn::util
