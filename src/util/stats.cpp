#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace netsyn::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p <= 0.0) return *std::min_element(xs.begin(), xs.end());
  if (p >= 100.0) return *std::max_element(xs.begin(), xs.end());
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

SlidingWindowMean::SlidingWindowMean(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("window must be positive");
}

void SlidingWindowMean::push(double value) {
  recent_.push_back(value);
  recent_sum_ += value;
  ++total_count_;
  if (recent_.size() > window_) {
    const double evicted = recent_.front();
    recent_.pop_front();
    recent_sum_ -= evicted;
    prior_sum_ += evicted;
    ++prior_count_;
  }
}

double SlidingWindowMean::windowMean() const {
  if (recent_.empty()) return 0.0;
  return recent_sum_ / static_cast<double>(recent_.size());
}

double SlidingWindowMean::priorMean() const {
  if (prior_count_ == 0) return 0.0;
  return prior_sum_ / static_cast<double>(prior_count_);
}

bool SlidingWindowMean::saturated() const {
  if (prior_count_ == 0) return false;  // window not yet preceded by history
  return windowMean() <= priorMean();
}

void SlidingWindowMean::reset() {
  recent_.clear();
  recent_sum_ = prior_sum_ = 0.0;
  prior_count_ = total_count_ = 0;
}

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0) {
  if (n_ == 0) throw std::invalid_argument("need at least one class");
}

void ConfusionMatrix::add(std::size_t actual, std::size_t predicted) {
  if (actual >= n_ || predicted >= n_)
    throw std::out_of_range("confusion matrix class out of range");
  ++cells_[actual * n_ + predicted];
  ++total_;
}

std::size_t ConfusionMatrix::count(std::size_t actual,
                                   std::size_t predicted) const {
  return cells_.at(actual * n_ + predicted);
}

std::size_t ConfusionMatrix::rowTotal(std::size_t actual) const {
  std::size_t s = 0;
  for (std::size_t j = 0; j < n_; ++j) s += cells_.at(actual * n_ + j);
  return s;
}

double ConfusionMatrix::rowNormalized(std::size_t actual,
                                      std::size_t predicted) const {
  const std::size_t row = rowTotal(actual);
  if (row == 0) return 0.0;
  return static_cast<double>(count(actual, predicted)) /
         static_cast<double>(row);
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t i = 0; i < n_; ++i) diag += cells_[i * n_ + i];
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::withinK(std::size_t k) const {
  if (total_ == 0) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t d = i > j ? i - j : j - i;
      if (d <= k) hit += cells_[i * n_ + j];
    }
  }
  return static_cast<double>(hit) / static_cast<double>(total_);
}

std::string ConfusionMatrix::toString() const {
  std::string out = "actual\\pred";
  char buf[64];
  for (std::size_t j = 0; j < n_; ++j) {
    std::snprintf(buf, sizeof(buf), "%8zu", j);
    out += buf;
  }
  out += '\n';
  for (std::size_t i = 0; i < n_; ++i) {
    std::snprintf(buf, sizeof(buf), "%10zu ", i);
    out += buf;
    for (std::size_t j = 0; j < n_; ++j) {
      std::snprintf(buf, sizeof(buf), "%8.3f", rowNormalized(i, j));
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace netsyn::util
