#include "util/argparse.hpp"

#include <cstdlib>
#include <stdexcept>

namespace netsyn::util {

void ArgParse::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + tok);
    }
    tok = tok.substr(2);
    std::string key;
    std::string value;
    if (const auto eq = tok.find('='); eq != std::string::npos) {
      key = tok.substr(0, eq);
      value = tok.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      key = tok;
      value = argv[++i];
    } else {
      key = tok;
      value = "true";  // bare flag
    }
    if (key.empty()) throw std::invalid_argument("empty flag name");
    if (values_.emplace(key, value).second) order_.push_back(key);
    else values_[key] = value;  // later occurrences win
  }
}

std::string ArgParse::getString(const std::string& key,
                                const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

long ArgParse::getInt(const std::string& key, long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
  return v;
}

double ArgParse::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + key + " expects a number, got '" +
                                it->second + "'");
  }
  return v;
}

bool ArgParse::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::invalid_argument("--" + key + " expects a boolean, got '" + s +
                              "'");
}

}  // namespace netsyn::util
