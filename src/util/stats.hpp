// Statistics helpers used by the experiment harness and NN evaluation:
// summary statistics, percentiles, sliding-window means (for the GA
// saturation trigger), and confusion matrices (for Figure 7).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace netsyn::util {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs);

/// Median; 0 for an empty range.
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. 0 for an empty range.
double percentile(std::vector<double> xs, double p);

/// Sliding-window running mean used by NetSyn's neighborhood-search trigger:
/// NS fires when the mean fitness of the last `w` generations is no better
/// than the mean of all generations before the window (paper §4.2.2).
class SlidingWindowMean {
 public:
  explicit SlidingWindowMean(std::size_t window);

  void push(double value);

  /// Number of values observed so far.
  std::size_t count() const { return total_count_; }

  /// Mean of the last `min(window, count)` values (mu_{l-w+1,l}).
  double windowMean() const;

  /// Mean of every value before the current window (mu_{1,l-w});
  /// 0 when nothing precedes the window.
  double priorMean() const;

  /// True when at least `window + 1` values exist and the window mean has not
  /// improved over the prior mean -- the saturation condition of the paper.
  bool saturated() const;

  void reset();

  // ---- durable-checkpoint accessors (service/checkpoint.cpp) ----
  // The full dynamic state is (window, recent values, prior_sum,
  // prior_count, total_count); recent_sum_ is recomputed on restore.

  std::size_t window() const { return window_; }
  const std::deque<double>& recentValues() const { return recent_; }
  double priorSum() const { return prior_sum_; }
  std::size_t priorCount() const { return prior_count_; }

  /// Rebuilds a window frozen by the accessors above. `total` must equal
  /// `prior_count + recent.size()` for a state captured from a live window.
  static SlidingWindowMean restored(std::size_t window,
                                    std::deque<double> recent,
                                    double prior_sum, std::size_t prior_count,
                                    std::size_t total) {
    SlidingWindowMean w(window);
    w.recent_ = std::move(recent);
    for (double v : w.recent_) w.recent_sum_ += v;
    w.prior_sum_ = prior_sum;
    w.prior_count_ = prior_count;
    w.total_count_ = total;
    return w;
  }

 private:
  std::size_t window_;
  std::deque<double> recent_;
  double recent_sum_ = 0.0;
  double prior_sum_ = 0.0;
  std::size_t prior_count_ = 0;
  std::size_t total_count_ = 0;
};

/// Row-normalizable confusion matrix for the CF / LCS fitness classifiers
/// (paper Figure 7(a)-(b)).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void add(std::size_t actual, std::size_t predicted);

  std::size_t numClasses() const { return n_; }
  std::size_t count(std::size_t actual, std::size_t predicted) const;
  std::size_t rowTotal(std::size_t actual) const;
  std::size_t total() const { return total_; }

  /// P(predicted = j | actual = i); 0 when the row is empty.
  double rowNormalized(std::size_t actual, std::size_t predicted) const;

  /// Fraction of diagonal entries.
  double accuracy() const;

  /// Fraction of samples within +/- `k` classes of the truth (the paper's
  /// "close-enough" reading of the matrices).
  double withinK(std::size_t k) const;

  /// Render as an aligned text table with row-normalized probabilities.
  std::string toString() const;

 private:
  std::size_t n_;
  std::size_t total_ = 0;
  std::vector<std::size_t> cells_;  // n_ * n_, row-major [actual][predicted]
};

}  // namespace netsyn::util
