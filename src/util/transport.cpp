#include "util/transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/faultinject.hpp"

namespace netsyn::util {

namespace {

double monotonicSeconds() {
  struct timespec ts {};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Waits for `events` on fd against a fixed deadline. EINTR resumes with
/// the *remaining* budget (the deadline was set when the wait began), so a
/// signal storm can only delay the timeout by its own delivery time, never
/// restart the budget. Returns false on timeout; throws TransportClosed on
/// a poll error. timeoutSeconds <= 0 waits forever.
bool pollFdUntil(int fd, short events, double timeoutSeconds,
                 const char* what) {
  const bool bounded = timeoutSeconds > 0.0;
  const double deadline = bounded ? monotonicSeconds() + timeoutSeconds : 0.0;
  for (;;) {
    int timeoutMs = -1;
    if (bounded) {
      const double leftMs = (deadline - monotonicSeconds()) * 1000.0;
      if (leftMs <= 0.0) return false;
      timeoutMs = static_cast<int>(std::max(1.0, leftMs));
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int r = poll(&pfd, 1, timeoutMs);
    if (r > 0) return true;
    if (r == 0) {
      if (!bounded) continue;  // spurious zero without a budget: re-arm
      return false;
    }
    if (errno == EINTR) continue;  // loop re-derives the remaining budget
    throw TransportClosed(std::string(what) + " poll failed (" +
                          std::strerror(errno) + ")");
  }
}

/// Splits one line off buf (consuming the newline) when present.
bool takeLine(std::string& buf, std::string& line) {
  const std::size_t nl = buf.find('\n');
  if (nl == std::string::npos) return false;
  line.assign(buf, 0, nl);
  buf.erase(0, nl + 1);
  return true;
}

}  // namespace

PipeTransport::PipeTransport(const std::string& path,
                             const std::vector<std::string>& args,
                             double recvTimeoutSeconds)
    : recvTimeoutSeconds_(recvTimeoutSeconds) {
  int toChild[2];
  int fromChild[2];
  if (pipe(toChild) != 0 || pipe(fromChild) != 0)
    throw std::runtime_error("pipe() failed");
  pid_ = fork();
  if (pid_ < 0) throw std::runtime_error("fork() failed");
  if (pid_ == 0) {
    dup2(toChild[0], STDIN_FILENO);
    dup2(fromChild[1], STDOUT_FILENO);
    ::close(toChild[0]);
    ::close(toChild[1]);
    ::close(fromChild[0]);
    ::close(fromChild[1]);
    std::vector<std::string> argStore;
    argStore.push_back(path);
    for (const std::string& a : args) argStore.push_back(a);
    std::vector<char*> argv;
    for (std::string& a : argStore) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(path.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  ::close(toChild[0]);
  ::close(fromChild[1]);
  writeFd_ = toChild[1];
  readFd_ = fromChild[0];
}

PipeTransport::~PipeTransport() { close(); }

void PipeTransport::markClosed() {
  closed_ = true;
  if (writeFd_ >= 0) {
    ::close(writeFd_);
    writeFd_ = -1;
  }
  if (readFd_ >= 0) {
    ::close(readFd_);
    readFd_ = -1;
  }
}

void PipeTransport::sendLine(const std::string& line) {
  if (closed_) throw TransportClosed("transport already closed");
  const std::string framed = line + "\n";
  const char* data = framed.c_str();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = write(writeFd_, data, left);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const std::string why = std::strerror(errno);
      markClosed();
      throw TransportClosed("write to backend failed (" + why + ")");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string PipeTransport::recvLine() {
  if (closed_) throw TransportClosed("transport already closed");
  // One fixed deadline for the whole line: partial reads and EINTR wakeups
  // resume the remaining budget rather than restarting it.
  const bool bounded = recvTimeoutSeconds_ > 0.0;
  const double deadline =
      bounded ? monotonicSeconds() + recvTimeoutSeconds_ : 0.0;
  std::string line;
  for (;;) {
    if (takeLine(buf_, line)) return line;
    if (buf_.size() > kMaxLineBytes) {
      markClosed();
      throw TransportClosed("backend line exceeds the framing cap");
    }
    if (bounded) {
      const double left = deadline - monotonicSeconds();
      bool readable = false;
      try {
        readable = left > 0.0 && pollFdUntil(readFd_, POLLIN, left, "backend");
      } catch (const TransportClosed&) {
        markClosed();
        throw;
      }
      if (!readable) {
        markClosed();
        throw TransportTimeout("backend silent past the receive timeout");
      }
    }
    char chunk[4096];
    const ssize_t n = read(readFd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      markClosed();
      throw TransportClosed("backend closed the session");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void PipeTransport::close() {
  if (pid_ <= 0 && closed_) return;
  markClosed();
  if (pid_ > 0) {
    // Closing stdin is the shutdown signal; give the backend a short grace
    // window to exit before escalating so close() can never hang.
    for (int i = 0; i < 200; ++i) {
      const pid_t r = waitpid(pid_, nullptr, WNOHANG);
      if (r == pid_ || (r < 0 && errno == ECHILD)) {
        pid_ = -1;
        return;
      }
      usleep(10 * 1000);
    }
    ::kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
}

void PipeTransport::kill() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  markClosed();
}

// ---------------------------------------------------------------- sockets --

SocketEndpoint SocketEndpoint::parse(const std::string& text) {
  SocketEndpoint ep;
  if (text.rfind("unix:", 0) == 0) {
    ep.isUnix = true;
    ep.host = text.substr(5);
    if (ep.host.empty())
      throw std::invalid_argument("empty unix socket path in '" + text + "'");
    if (ep.host.size() >= sizeof(sockaddr_un{}.sun_path))
      throw std::invalid_argument("unix socket path too long: '" + ep.host +
                                  "'");
    return ep;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0)
    throw std::invalid_argument("endpoint '" + text +
                                "' is not HOST:PORT or unix:PATH");
  ep.host = text.substr(0, colon);
  const std::string portText = text.substr(colon + 1);
  if (portText.empty() ||
      portText.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument("bad port in endpoint '" + text + "'");
  const unsigned long port = std::stoul(portText);
  if (port > 65535)
    throw std::invalid_argument("port out of range in endpoint '" + text +
                                "'");
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::string SocketEndpoint::str() const {
  if (isUnix) return "unix:" + host;
  return host + ":" + std::to_string(port);
}

namespace {

/// Severs a socket connection when an armed fault fires at `site`: the
/// FaultInjected becomes the same TransportClosed a real partition raises.
void faultSever(const char* site, int& fd) {
  if (!FaultRegistry::armed()) [[likely]]
    return;
  try {
    FaultRegistry::instance().onHit(site);
  } catch (const FaultInjected& e) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    throw TransportClosed(std::string("fault injected at ") + site + ": " +
                          e.what());
  }
}

int dialTcp(const SocketEndpoint& ep) {
  struct addrinfo hints {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string portText = std::to_string(ep.port);
  const int rc = getaddrinfo(ep.host.c_str(), portText.c_str(), &hints, &res);
  if (rc != 0)
    throw TransportClosed("cannot resolve " + ep.str() + " (" +
                          gai_strerror(rc) + ")");
  int fd = -1;
  std::string lastError = "no addresses";
  for (struct addrinfo* ai = res; ai; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      lastError = std::strerror(errno);
      continue;
    }
    int r;
    do {
      r = connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (r < 0 && errno == EINTR);
    if (r == 0) break;
    lastError = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0)
    throw TransportClosed("cannot connect to " + ep.str() + " (" + lastError +
                          ")");
  // Line-oriented request/response traffic: don't batch tiny frames.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

int dialUnix(const SocketEndpoint& ep) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw TransportClosed(std::string("socket() failed (") +
                          std::strerror(errno) + ")");
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, ep.host.c_str(), sizeof(addr.sun_path) - 1);
  int r;
  do {
    r = connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr);
  } while (r < 0 && errno == EINTR);
  if (r != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw TransportClosed("cannot connect to " + ep.str() + " (" + why + ")");
  }
  return fd;
}

}  // namespace

SocketTransport::SocketTransport(const SocketEndpoint& endpoint,
                                 double recvTimeoutSeconds,
                                 std::size_t maxLineBytes)
    : recvTimeoutSeconds_(recvTimeoutSeconds),
      maxLineBytes_(maxLineBytes),
      peer_(endpoint.str()) {
  int none = -1;
  faultSever("transport.dial", none);
  fd_.store(endpoint.isUnix ? dialUnix(endpoint) : dialTcp(endpoint),
            std::memory_order_release);
}

SocketTransport::SocketTransport(int fd, std::string peerName,
                                 double recvTimeoutSeconds,
                                 std::size_t maxLineBytes)
    : fd_(fd),
      recvTimeoutSeconds_(recvTimeoutSeconds),
      maxLineBytes_(maxLineBytes),
      peer_(std::move(peerName)) {
  if (fd < 0) throw std::invalid_argument("adopted socket fd is invalid");
}

SocketTransport::~SocketTransport() { close(); }

void SocketTransport::markClosed() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void SocketTransport::sendBytes(const char* data, std::size_t n) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) throw TransportClosed("transport already closed");
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0 && errno == EINTR) continue;
    if (w <= 0) {
      const std::string why = std::strerror(errno);
      markClosed();
      throw TransportClosed("write to " + peer_ + " failed (" + why + ")");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void SocketTransport::sendLine(const std::string& line) {
  const std::string framed = line + "\n";
  sendBytes(framed.data(), framed.size());
}

std::string SocketTransport::recvLine() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) throw TransportClosed("transport already closed");
  {
    int none = -1;
    try {
      faultSever("transport.recv", none);
    } catch (const TransportClosed&) {
      markClosed();
      throw;
    }
  }
  const bool bounded = recvTimeoutSeconds_ > 0.0;
  const double deadline =
      bounded ? monotonicSeconds() + recvTimeoutSeconds_ : 0.0;
  std::string line;
  for (;;) {
    if (takeLine(buf_, line)) return line;
    if (buf_.size() > maxLineBytes_) {
      markClosed();
      throw TransportClosed(peer_ + " sent a line past the framing cap");
    }
    if (bounded) {
      const double left = deadline - monotonicSeconds();
      bool readable = false;
      try {
        readable = left > 0.0 && pollFdUntil(fd, POLLIN, left, peer_.c_str());
      } catch (const TransportClosed&) {
        markClosed();
        throw;
      }
      if (!readable) {
        markClosed();
        throw TransportTimeout(peer_ + " silent past the receive timeout");
      }
    }
    char chunk[4096];
    const ssize_t n = recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const std::string why =
          n == 0 ? "peer closed the connection" : std::strerror(errno);
      markClosed();
      throw TransportClosed("read from " + peer_ + " failed (" + why + ")");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void SocketTransport::close() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
  markClosed();
}

void SocketTransport::kill() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    // RST on close: the peer sees an abrupt reset, as a severed network
    // path would deliver — no FIN handshake, no pending-data drain.
    struct linger lg {};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  }
  markClosed();
}

void SocketTransport::sever() {
  // Wake a recv blocked on the owning thread without releasing the fd (no
  // close, so no fd-reuse race): the blocked thread sees EOF and runs
  // markClosed itself.
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
}

SocketListener::SocketListener(const SocketEndpoint& endpoint, int backlog) {
  bound_ = endpoint;
  if (endpoint.isUnix) {
    fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
      throw std::runtime_error(std::string("socket() failed (") +
                               std::strerror(errno) + ")");
    struct sockaddr_un addr {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, endpoint.host.c_str(),
                 sizeof(addr.sun_path) - 1);
    // A stale socket file from a dead process would fail the bind; the
    // listener owns the path, so clearing it is safe.
    unlink(endpoint.host.c_str());
    if (bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
        0) {
      const std::string why = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("cannot bind " + endpoint.str() + " (" + why +
                               ")");
    }
    unlinkOnClose_ = true;
  } else {
    struct addrinfo hints {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo* res = nullptr;
    const std::string portText = std::to_string(endpoint.port);
    const int rc =
        getaddrinfo(endpoint.host.c_str(), portText.c_str(), &hints, &res);
    if (rc != 0)
      throw std::runtime_error("cannot resolve " + endpoint.str() + " (" +
                               gai_strerror(rc) + ")");
    std::string lastError = "no addresses";
    for (struct addrinfo* ai = res; ai; ai = ai->ai_next) {
      fd_ = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd_ < 0) {
        lastError = std::strerror(errno);
        continue;
      }
      int one = 1;
      setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (bind(fd_, ai->ai_addr, ai->ai_addrlen) == 0) break;
      lastError = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
    }
    freeaddrinfo(res);
    if (fd_ < 0)
      throw std::runtime_error("cannot bind " + endpoint.str() + " (" +
                               lastError + ")");
    // Resolve an ephemeral-port bind to the kernel's choice.
    struct sockaddr_storage ss {};
    socklen_t slen = sizeof ss;
    if (getsockname(fd_, reinterpret_cast<struct sockaddr*>(&ss), &slen) ==
        0) {
      if (ss.ss_family == AF_INET)
        bound_.port =
            ntohs(reinterpret_cast<struct sockaddr_in*>(&ss)->sin_port);
      else if (ss.ss_family == AF_INET6)
        bound_.port =
            ntohs(reinterpret_cast<struct sockaddr_in6*>(&ss)->sin6_port);
    }
  }
  if (listen(fd_, backlog) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw std::runtime_error("cannot listen on " + bound_.str() + " (" + why +
                             ")");
  }
}

SocketListener::~SocketListener() { close(); }

void SocketListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (unlinkOnClose_) {
    unlink(bound_.host.c_str());
    unlinkOnClose_ = false;
  }
}

std::unique_ptr<SocketTransport> SocketListener::accept(
    double timeoutSeconds, double recvTimeoutSeconds) {
  if (fd_ < 0) throw TransportClosed("listener is closed");
  if (!pollFdUntil(fd_, POLLIN, timeoutSeconds, "listener")) return nullptr;
  int conn;
  do {
    conn = ::accept(fd_, nullptr, nullptr);
  } while (conn < 0 && errno == EINTR);
  if (conn < 0)
    throw TransportClosed(std::string("accept failed (") +
                          std::strerror(errno) + ")");
  faultSever("transport.accept", conn);
  if (!bound_.isUnix) {
    int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return std::make_unique<SocketTransport>(
      conn, bound_.str() + "#peer", recvTimeoutSeconds);
}

RetrySchedule::RetrySchedule(double baseMs, double capMs, std::uint64_t seed)
    : baseMs_(baseMs), capMs_(capMs), state_(seed) {}

void RetrySchedule::reset(std::uint64_t seed) {
  state_ = seed;
  attempt_ = 0;
}

double RetrySchedule::nextDelayMs() {
  ++attempt_;
  // splitmix64 step — the same generator the fault-injection registry uses
  // for its probability draws, so every "random" delay in a chaos run comes
  // from a seeded stream.
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const double u =
      static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  const double factor = static_cast<double>(
      1ull << std::min<std::size_t>(attempt_ - 1, 20));
  const double capped = std::min(baseMs_ * factor, capMs_);
  return capped * (0.5 + 0.5 * u);
}

}  // namespace netsyn::util
