#include "util/transport.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace netsyn::util {

PipeTransport::PipeTransport(const std::string& path,
                             const std::vector<std::string>& args,
                             double recvTimeoutSeconds)
    : recvTimeoutSeconds_(recvTimeoutSeconds) {
  int toChild[2];
  int fromChild[2];
  if (pipe(toChild) != 0 || pipe(fromChild) != 0)
    throw std::runtime_error("pipe() failed");
  pid_ = fork();
  if (pid_ < 0) throw std::runtime_error("fork() failed");
  if (pid_ == 0) {
    dup2(toChild[0], STDIN_FILENO);
    dup2(fromChild[1], STDOUT_FILENO);
    ::close(toChild[0]);
    ::close(toChild[1]);
    ::close(fromChild[0]);
    ::close(fromChild[1]);
    std::vector<std::string> argStore;
    argStore.push_back(path);
    for (const std::string& a : args) argStore.push_back(a);
    std::vector<char*> argv;
    for (std::string& a : argStore) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv(path.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  ::close(toChild[0]);
  ::close(fromChild[1]);
  writeFd_ = toChild[1];
  readFd_ = fromChild[0];
}

PipeTransport::~PipeTransport() { close(); }

void PipeTransport::markClosed() {
  closed_ = true;
  if (writeFd_ >= 0) {
    ::close(writeFd_);
    writeFd_ = -1;
  }
  if (readFd_ >= 0) {
    ::close(readFd_);
    readFd_ = -1;
  }
}

void PipeTransport::sendLine(const std::string& line) {
  if (closed_) throw TransportClosed("transport already closed");
  const std::string framed = line + "\n";
  const char* data = framed.c_str();
  std::size_t left = framed.size();
  while (left > 0) {
    const ssize_t n = write(writeFd_, data, left);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      const std::string why = std::strerror(errno);
      markClosed();
      throw TransportClosed("write to backend failed (" + why + ")");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::string PipeTransport::recvLine() {
  if (closed_) throw TransportClosed("transport already closed");
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    if (recvTimeoutSeconds_ > 0.0) {
      struct pollfd pfd {};
      pfd.fd = readFd_;
      pfd.events = POLLIN;
      const int timeoutMs =
          static_cast<int>(std::max(1.0, recvTimeoutSeconds_ * 1000.0));
      int r;
      do {
        r = poll(&pfd, 1, timeoutMs);
      } while (r < 0 && errno == EINTR);
      if (r == 0) {
        markClosed();
        throw TransportTimeout("backend silent past the receive timeout");
      }
      if (r < 0) {
        const std::string why = std::strerror(errno);
        markClosed();
        throw TransportClosed("poll on backend failed (" + why + ")");
      }
    }
    char chunk[4096];
    const ssize_t n = read(readFd_, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      markClosed();
      throw TransportClosed("backend closed the session");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void PipeTransport::close() {
  if (pid_ <= 0 && closed_) return;
  markClosed();
  if (pid_ > 0) {
    // Closing stdin is the shutdown signal; give the backend a short grace
    // window to exit before escalating so close() can never hang.
    for (int i = 0; i < 200; ++i) {
      const pid_t r = waitpid(pid_, nullptr, WNOHANG);
      if (r == pid_ || (r < 0 && errno == ECHILD)) {
        pid_ = -1;
        return;
      }
      usleep(10 * 1000);
    }
    ::kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
}

void PipeTransport::kill() {
  if (pid_ > 0) {
    ::kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }
  markClosed();
}

RetrySchedule::RetrySchedule(double baseMs, double capMs, std::uint64_t seed)
    : baseMs_(baseMs), capMs_(capMs), state_(seed) {}

void RetrySchedule::reset(std::uint64_t seed) {
  state_ = seed;
  attempt_ = 0;
}

double RetrySchedule::nextDelayMs() {
  ++attempt_;
  // splitmix64 step — the same generator the fault-injection registry uses
  // for its probability draws, so every "random" delay in a chaos run comes
  // from a seeded stream.
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const double u =
      static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
  const double factor = static_cast<double>(
      1ull << std::min<std::size_t>(attempt_ - 1, 20));
  const double capped = std::min(baseMs_ * factor, capMs_);
  return capped * (0.5 + 0.5 * u);
}

}  // namespace netsyn::util
