#include "util/json.hpp"

#include <cctype>
#include <stdexcept>

namespace netsyn::util {
namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parseValue() {
    if (depth_ >= kMaxJsonDepth) fail("nesting too deep");
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return parseString();
    if (c == 't' || c == 'f') return parseBool();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return parseNumber();
    fail("unexpected character");
  }

  JsonValue parseObject() {
    expect('{');
    ++depth_;
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      JsonValue key = parseString();
      expect(':');
      v.members.emplace_back(std::move(key.str), parseValue());
      const char c = peek();
      ++pos_;
      if (c == '}') {
        --depth_;
        return v;
      }
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parseArray() {
    expect('[');
    ++depth_;
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    while (true) {
      v.items.push_back(parseValue());
      const char c = peek();
      ++pos_;
      if (c == ']') {
        --depth_;
        return v;
      }
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parseString() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.str.push_back('"'); break;
          case '\\': v.str.push_back('\\'); break;
          case '/': v.str.push_back('/'); break;
          case 'n': v.str.push_back('\n'); break;
          case 't': v.str.push_back('\t'); break;
          case 'u': {
            // \u00XX only — the subset the writer emits for C0 controls.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("malformed \\u escape");
            }
            if (code > 0xFF) fail("unsupported \\u escape (> \\u00ff)");
            v.str.push_back(static_cast<char>(code));
            break;
          }
          default: fail("unsupported string escape");
        }
      } else {
        v.str.push_back(c);
      }
    }
  }

  JsonValue parseBool() {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("expected true/false");
    }
    return v;
  }

  JsonValue parseNumber() {
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    v.raw = text_.substr(start, pos_ - start);
    if (v.raw.empty() || v.raw == "-") fail("malformed number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) {
  return JsonParser(text).parse();
}

std::string escapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {  // remaining C0 controls: RFC 8259 forbids them raw
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[u >> 4]);
          out.push_back(hex[u & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::uint64_t jsonUnsigned(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::Number ||
      v.raw.find_first_not_of("0123456789") != std::string::npos)
    throw std::invalid_argument(std::string("JSON: ") + key +
                                " must be a non-negative integer");
  try {
    return std::stoull(v.raw);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument(std::string("JSON: ") + key +
                                " is out of range");
  }
}

double jsonDouble(const JsonValue& v, const char* key) {
  if (v.kind != JsonValue::Kind::Number)
    throw std::invalid_argument(std::string("JSON: ") + key +
                                " must be a number");
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(v.raw, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("JSON: ") + key +
                                " is not a valid number");
  }
  if (consumed != v.raw.size())
    throw std::invalid_argument(std::string("JSON: ") + key +
                                " is not a valid number");
  return parsed;
}

void readSize(const JsonValue& obj, const char* key, std::size_t& out) {
  if (const JsonValue* v = obj.find(key))
    out = static_cast<std::size_t>(jsonUnsigned(*v, key));
}

void readU64(const JsonValue& obj, const char* key, std::uint64_t& out) {
  if (const JsonValue* v = obj.find(key)) out = jsonUnsigned(*v, key);
}

void readDouble(const JsonValue& obj, const char* key, double& out) {
  if (const JsonValue* v = obj.find(key)) out = jsonDouble(*v, key);
}

void readBool(const JsonValue& obj, const char* key, bool& out) {
  if (const JsonValue* v = obj.find(key)) {
    if (v->kind != JsonValue::Kind::Bool)
      throw std::invalid_argument(std::string("JSON: ") + key +
                                  " must be a bool");
    out = v->boolean;
  }
}

void readString(const JsonValue& obj, const char* key, std::string& out) {
  if (const JsonValue* v = obj.find(key)) {
    if (v->kind != JsonValue::Kind::String)
      throw std::invalid_argument(std::string("JSON: ") + key +
                                  " must be a string");
    out = v->str;
  }
}

}  // namespace netsyn::util
