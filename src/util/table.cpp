#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace netsyn::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("table needs a header");
}

Table& Table::newRow() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) newRow();
  if (rows_.back().size() >= header_.size())
    throw std::out_of_range("row has more cells than header columns");
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::addInt(long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%ld", v);
  return add(std::string(buf));
}

Table& Table::addDouble(double v, int precision) {
  if (std::isnan(v)) return add("-");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return add(std::string(buf));
}

Table& Table::addPercent(double fraction, int precision) {
  if (std::isnan(fraction)) return add("-");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return add(std::string(buf));
}

std::string Table::toString() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emitRow = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      out.append(width[c] - cell.size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  emitRow(header_, out);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule.append(width[c] + (c + 1 < header_.size() ? 2 : 0), '-');
  out += rule + '\n';
  for (const auto& row : rows_) emitRow(row, out);
  return out;
}

namespace {
std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::toCsv() const {
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) out += ',';
    out += csvEscape(header_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) out += ',';
      if (c < row.size()) out += csvEscape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void Table::writeCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f << toCsv();
  if (!f) throw std::runtime_error("failed writing " + path);
}

}  // namespace netsyn::util
